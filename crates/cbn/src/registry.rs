//! The stream schema registry.
//!
//! Every stream in COSMOS has a unique name; nodes need the schema of a
//! stream to evaluate filters and projections on its datagrams. The paper
//! prescribes two storage modes (Section 3): **flooding** the schema to
//! every node when streams are few, and a **DHT** keyed by stream name
//! otherwise. The registry also records each stream's *advertisement* —
//! the origin node that publishes it — which the routing layer uses to
//! anchor dissemination.
//!
//! The registry tracks the number of control messages each mode would
//! send so tests and benches can compare the two (flooding costs `O(N)`
//! messages per stream, the DHT costs `O(replicas)` plus per-lookup
//! traffic).

use crate::dht::HashRing;
use cosmos_types::{CosmosError, FxHashMap, NodeId, Result, Schema, StreamName};

/// How schema metadata is distributed across nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistryMode {
    /// Every node stores every schema; registration floods the network.
    Flooding,
    /// Schemas live on `replicas` ring nodes; lookups are remote.
    Dht {
        /// Number of replica nodes storing each schema.
        replicas: usize,
    },
}

/// Metadata registered for one stream.
#[derive(Debug, Clone, PartialEq)]
pub struct RegisteredStream {
    /// The stream's unique name.
    pub name: StreamName,
    /// Its schema.
    pub schema: Schema,
    /// The overlay node that advertises (publishes) the stream.
    pub origin: NodeId,
}

/// The system-wide schema registry.
///
/// This is a logically centralized view; the `mode` determines the
/// *accounted cost* of registration and lookup, and — in DHT mode — which
/// nodes physically hold each entry (exposed via [`SchemaRegistry::holders`]).
#[derive(Debug, Clone)]
pub struct SchemaRegistry {
    mode: RegistryMode,
    node_count: usize,
    ring: HashRing,
    streams: FxHashMap<StreamName, RegisteredStream>,
    control_messages: u64,
}

impl SchemaRegistry {
    /// A registry for a network of `nodes` overlay nodes.
    pub fn new(mode: RegistryMode, nodes: impl IntoIterator<Item = NodeId>) -> SchemaRegistry {
        let nodes: Vec<NodeId> = nodes.into_iter().collect();
        SchemaRegistry {
            mode,
            node_count: nodes.len(),
            ring: HashRing::of(nodes),
            streams: FxHashMap::default(),
            control_messages: 0,
        }
    }

    /// The registry's distribution mode.
    pub fn mode(&self) -> RegistryMode {
        self.mode
    }

    /// Register a stream. Fails on duplicate names (stream names must be
    /// unique in COSMOS).
    pub fn register(
        &mut self,
        name: impl Into<StreamName>,
        schema: Schema,
        origin: NodeId,
    ) -> Result<()> {
        let name = name.into();
        if self.streams.contains_key(&name) {
            return Err(CosmosError::Network(format!(
                "stream '{name}' is already registered"
            )));
        }
        self.control_messages += match self.mode {
            RegistryMode::Flooding => self.node_count as u64,
            RegistryMode::Dht { replicas } => replicas.min(self.node_count) as u64,
        };
        self.streams.insert(
            name.clone(),
            RegisteredStream {
                name,
                schema,
                origin,
            },
        );
        Ok(())
    }

    /// Remove a stream registration.
    pub fn unregister(&mut self, name: &StreamName) -> Option<RegisteredStream> {
        self.streams.remove(name)
    }

    /// Replace the schema of an already-registered stream (a processor
    /// re-advertising a representative result stream whose column set
    /// grew after a merge). Costs the same control traffic as a fresh
    /// registration.
    pub fn update_schema(&mut self, name: &StreamName, schema: Schema) -> Result<()> {
        let entry = self
            .streams
            .get_mut(name)
            .ok_or_else(|| CosmosError::Network(format!("stream '{name}' is not registered")))?;
        entry.schema = schema;
        self.control_messages += match self.mode {
            RegistryMode::Flooding => self.node_count as u64,
            RegistryMode::Dht { replicas } => replicas.min(self.node_count) as u64,
        };
        Ok(())
    }

    /// Look up a stream (accounts a remote round-trip in DHT mode).
    pub fn lookup(&mut self, name: &StreamName) -> Option<&RegisteredStream> {
        if matches!(self.mode, RegistryMode::Dht { .. }) && self.streams.contains_key(name) {
            self.control_messages += 2; // request + response
        }
        self.streams.get(name)
    }

    /// Look up without cost accounting (local cache hit).
    pub fn peek(&self, name: &StreamName) -> Option<&RegisteredStream> {
        self.streams.get(name)
    }

    /// The schema of a stream, if registered.
    pub fn schema(&self, name: &StreamName) -> Option<&Schema> {
        self.streams.get(name).map(|r| &r.schema)
    }

    /// The origin (advertising) node of a stream, if registered.
    pub fn origin(&self, name: &StreamName) -> Option<NodeId> {
        self.streams.get(name).map(|r| r.origin)
    }

    /// Nodes physically holding the entry for `name` under the current
    /// mode (every node for flooding; the ring replicas for DHT).
    pub fn holders(&self, name: &StreamName) -> Vec<NodeId> {
        match self.mode {
            RegistryMode::Flooding => (0..self.node_count as u32).map(NodeId).collect(),
            RegistryMode::Dht { replicas } => self.ring.lookup_replicas(name.as_str(), replicas),
        }
    }

    /// Total control messages accounted so far.
    pub fn control_messages(&self) -> u64 {
        self.control_messages
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.streams.len()
    }

    /// Whether no stream is registered.
    pub fn is_empty(&self) -> bool {
        self.streams.is_empty()
    }

    /// Iterate over registered streams.
    pub fn iter(&self) -> impl Iterator<Item = &RegisteredStream> {
        self.streams.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_types::AttrType;

    fn schema() -> Schema {
        Schema::of(&[("a", AttrType::Int)])
    }

    fn nodes(n: u32) -> impl Iterator<Item = NodeId> {
        (0..n).map(NodeId)
    }

    #[test]
    fn register_and_lookup() {
        let mut r = SchemaRegistry::new(RegistryMode::Flooding, nodes(4));
        r.register("S", schema(), NodeId(2)).unwrap();
        let name = StreamName::from("S");
        assert_eq!(r.lookup(&name).unwrap().origin, NodeId(2));
        assert_eq!(r.schema(&name), Some(&schema()));
        assert_eq!(r.origin(&name), Some(NodeId(2)));
        assert_eq!(r.len(), 1);
        assert!(!r.is_empty());
        assert_eq!(r.iter().count(), 1);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut r = SchemaRegistry::new(RegistryMode::Flooding, nodes(4));
        r.register("S", schema(), NodeId(0)).unwrap();
        let err = r.register("S", schema(), NodeId(1)).unwrap_err();
        assert_eq!(err.kind(), "network");
    }

    #[test]
    fn flooding_costs_n_messages_per_stream() {
        let mut r = SchemaRegistry::new(RegistryMode::Flooding, nodes(10));
        r.register("S", schema(), NodeId(0)).unwrap();
        r.register("T", schema(), NodeId(0)).unwrap();
        assert_eq!(r.control_messages(), 20);
        // flooding lookups are free (every node has a local copy)
        r.lookup(&StreamName::from("S"));
        assert_eq!(r.control_messages(), 20);
    }

    #[test]
    fn dht_costs_replicas_plus_lookups() {
        let mut r = SchemaRegistry::new(RegistryMode::Dht { replicas: 3 }, nodes(10));
        r.register("S", schema(), NodeId(0)).unwrap();
        assert_eq!(r.control_messages(), 3);
        r.lookup(&StreamName::from("S"));
        assert_eq!(r.control_messages(), 5);
        // missing lookups do not panic and cost nothing
        assert!(r.lookup(&StreamName::from("missing")).is_none());
        assert_eq!(r.control_messages(), 5);
        // peek never accounts
        assert!(r.peek(&StreamName::from("S")).is_some());
        assert_eq!(r.control_messages(), 5);
    }

    #[test]
    fn holders_match_mode() {
        let mut flood = SchemaRegistry::new(RegistryMode::Flooding, nodes(5));
        flood.register("S", schema(), NodeId(0)).unwrap();
        assert_eq!(flood.holders(&StreamName::from("S")).len(), 5);

        let mut dht = SchemaRegistry::new(RegistryMode::Dht { replicas: 2 }, nodes(5));
        dht.register("S", schema(), NodeId(0)).unwrap();
        let h = dht.holders(&StreamName::from("S"));
        assert_eq!(h.len(), 2);
        assert!(h.iter().all(|n| n.raw() < 5));
    }

    #[test]
    fn unregister_removes() {
        let mut r = SchemaRegistry::new(RegistryMode::Flooding, nodes(2));
        r.register("S", schema(), NodeId(0)).unwrap();
        assert!(r.unregister(&StreamName::from("S")).is_some());
        assert!(r.unregister(&StreamName::from("S")).is_none());
        assert!(r.is_empty());
        // name is free again
        r.register("S", schema(), NodeId(1)).unwrap();
    }
}
