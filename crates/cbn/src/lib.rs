#![forbid(unsafe_code)]
//! A stream-aware content-based network (CBN).
//!
//! Section 3 of the COSMOS paper enhances a classical content-based
//! network (Carzaniga & Wolf's Siena model) with the notion of *streaming
//! relations*:
//!
//! * every datagram is a tuple of a named stream ([`cosmos_types::Tuple`]);
//! * receivers subscribe with **profiles** `π = ⟨S, P, F⟩` — a set of
//!   stream names `S`, per-stream projection attribute sets `P`
//!   (*early projection*, an extension over traditional CBN), and a set
//!   of per-stream conjunctive filters `F`;
//! * a datagram is *covered* by a profile iff it is covered by any filter
//!   of its stream, and is then projected onto the profile's attribute
//!   set before being forwarded.
//!
//! This crate provides:
//!
//! * [`predicate`] — the constraint algebra shared with the query layer:
//!   intervals, per-attribute constraints, attribute-difference
//!   constraints (needed for the paper's window re-tightening filters
//!   such as `−3h ≤ O.timestamp − C.timestamp ≤ 0`), and conjunctions
//!   with *satisfaction*, *implication*, *intersection* and *hull*.
//! * [`profile`] — profiles, covering, and profile union (used to merge
//!   the interests of an entire subtree into one routing-table entry).
//! * [`matcher`] — two matching engines: a naive scan and a
//!   counting-based engine with an equality fast path (benched
//!   against each other in `cosmos-bench`).
//! * [`registry`] — the stream schema registry with the paper's two
//!   modes: flooding for small systems and a consistent-hashing DHT
//!   otherwise.
//! * [`router`] — the per-node routing state: neighbor interests, local
//!   subscribers, reverse-path subscription propagation helpers and
//!   datagram forwarding with early projection.

pub mod dht;
pub mod matcher;
pub mod predicate;
pub mod profile;
pub mod registry;
pub mod router;
pub mod sat;

pub use matcher::{CountingMatcher, MatchEngine, NaiveMatcher};
pub use predicate::{AttrConstraint, Conjunction, DiffRange, Interval};
pub use profile::{Profile, ProfileEntry, Projection};
pub use registry::{RegisteredStream, RegistryMode, SchemaRegistry};
pub use router::{
    BatchForward, Destination, ForwardDecision, PlanStore, ProjectionPlan, Router, RouterCounters,
    SharedRouter,
};
pub use sat::{
    conjunction_implies, conjunction_range, conjunction_unsat, filters_imply, filters_intersect,
};
