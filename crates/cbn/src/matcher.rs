//! Profile matching engines.
//!
//! Every CBN node must answer, per incoming datagram, "which of the
//! profiles installed here cover it?". This module provides two
//! implementations behind the [`MatchEngine`] trait:
//!
//! * [`NaiveMatcher`] — scans every installed profile. The baseline.
//! * [`CountingMatcher`] — a Siena-style *counting algorithm*: each
//!   conjunctive filter is decomposed into per-attribute constraints; an
//!   index keyed by attribute finds the satisfied constraints and a
//!   per-filter counter detects filters whose constraint count is fully
//!   satisfied. Pure equality constraints (the common case for key
//!   attributes like `itemID` or `station_id`) take a hash-lookup fast
//!   path instead of a scan.
//!
//! Both engines return deterministic (sorted) key lists and are checked
//! against each other by property tests; `cosmos-bench` compares their
//! throughput (ablation A1 in DESIGN.md).

use crate::predicate::{AttrConstraint, DiffRange};
use crate::profile::Profile;
use cosmos_types::{FxHashMap, Schema, StreamName, Tuple, Value};
use std::collections::BTreeSet;
use std::hash::Hash;

/// A pluggable profile-matching engine.
///
/// Keys identify subscriptions (a local subscriber or a next-hop
/// neighbor). `matches` returns the keys of every installed profile that
/// covers the tuple, sorted and deduplicated.
pub trait MatchEngine<K: Ord + Clone> {
    /// Install (or replace) the profile for a key.
    fn insert(&mut self, key: K, profile: Profile);
    /// Remove the profile for a key, if present.
    fn remove(&mut self, key: &K);
    /// Keys of all profiles covering the tuple, sorted.
    fn matches(&self, tuple: &Tuple, schema: &Schema) -> Vec<K>;
    /// Per-tuple match keys for a *stream-homogeneous* batch (all tuples
    /// share `tuples[0].stream` and `schema`). The default delegates to
    /// [`MatchEngine::matches`]; indexed engines override it to pay the
    /// stream-partition lookup once per batch instead of once per tuple.
    fn matches_batch(&self, tuples: &[Tuple], schema: &Schema) -> Vec<Vec<K>> {
        tuples.iter().map(|t| self.matches(t, schema)).collect()
    }
    /// Number of installed profiles.
    fn len(&self) -> usize;
    /// Whether no profile is installed.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Baseline engine: evaluate every profile against the tuple.
#[derive(Debug, Clone, Default)]
pub struct NaiveMatcher<K> {
    profiles: Vec<(K, Profile)>,
}

impl<K: Ord + Clone> NaiveMatcher<K> {
    /// An empty engine.
    pub fn new() -> Self {
        NaiveMatcher {
            profiles: Vec::new(),
        }
    }
}

impl<K: Ord + Clone> MatchEngine<K> for NaiveMatcher<K> {
    fn insert(&mut self, key: K, profile: Profile) {
        match self.profiles.iter_mut().find(|(k, _)| *k == key) {
            Some((_, p)) => *p = profile,
            None => self.profiles.push((key, profile)),
        }
    }

    fn remove(&mut self, key: &K) {
        self.profiles.retain(|(k, _)| k != key);
    }

    fn matches(&self, tuple: &Tuple, schema: &Schema) -> Vec<K> {
        let mut out: Vec<K> = self
            .profiles
            .iter()
            .filter(|(_, p)| p.covers_tuple(tuple, schema))
            .map(|(k, _)| k.clone())
            .collect();
        out.sort_unstable();
        out
    }

    fn len(&self) -> usize {
        self.profiles.len()
    }
}

/// One decomposed conjunctive filter inside the counting index.
#[derive(Debug, Clone)]
struct FilterEntry<K> {
    key: K,
    /// Number of per-attribute constraints that must be counted.
    needed: u32,
    /// Difference constraints, checked after the counter fires.
    diffs: Vec<(String, String, DiffRange)>,
}

/// Per-stream constraint index.
#[derive(Debug, Clone, Default)]
struct StreamIndex<K> {
    /// Keys whose entry for this stream has no filters (accept all).
    accept_all: Vec<K>,
    filters: Vec<FilterEntry<K>>,
    /// Fast path: pure point constraints without exclusions, keyed by
    /// attribute then value. Nested (rather than `(String, Value)`-keyed)
    /// so a probe borrows the tuple's name and value — the hot path
    /// allocates nothing.
    eq_index: FxHashMap<String, FxHashMap<Value, Vec<u32>>>,
    /// General constraints evaluated by scan: `(attribute, constraint,
    /// filter index)`.
    scan: Vec<(String, AttrConstraint, u32)>,
}

/// Counting-algorithm engine with an equality fast path.
#[derive(Debug, Clone, Default)]
pub struct CountingMatcher<K> {
    profiles: FxHashMap<K, Profile>,
    streams: FxHashMap<StreamName, StreamIndex<K>>,
}

impl<K: Ord + Clone + Hash + Eq> CountingMatcher<K> {
    /// An empty engine.
    pub fn new() -> Self {
        CountingMatcher {
            profiles: FxHashMap::default(),
            streams: FxHashMap::default(),
        }
    }

    /// Rebuild the index of one stream from all installed profiles.
    fn rebuild_stream(&mut self, stream: &StreamName) {
        let mut idx = StreamIndex {
            accept_all: Vec::new(),
            filters: Vec::new(),
            eq_index: FxHashMap::default(),
            scan: Vec::new(),
        };
        for (key, profile) in &self.profiles {
            let Some(entry) = profile.entry(stream) else {
                continue;
            };
            if entry.filters.is_empty() {
                idx.accept_all.push(key.clone());
                continue;
            }
            // Dead conjunctions can never match; skip indexing them. An
            // entry whose every filter is pruned stays out of `accept_all`
            // (only an originally-empty filter list means accept-all), so
            // it simply matches nothing — which is what an unsatisfiable
            // disjunction denotes.
            for conj in entry
                .filters
                .iter()
                .filter(|conj| !crate::sat::conjunction_unsat(conj))
            {
                let fid = idx.filters.len() as u32;
                let mut needed = 0u32;
                for (attr, c) in conj.attr_constraints() {
                    if c.is_any() {
                        continue;
                    }
                    needed += 1;
                    // Fast path for `attr = v` without exclusions.
                    if c.excluded.is_empty() {
                        if let (Some((lo, true)), Some((hi, true))) =
                            (&c.interval.lo, &c.interval.hi)
                        {
                            if lo == hi {
                                idx.eq_index
                                    .entry(attr.to_string())
                                    .or_default()
                                    .entry(lo.clone())
                                    .or_default()
                                    .push(fid);
                                continue;
                            }
                        }
                    }
                    idx.scan.push((attr.to_string(), c.clone(), fid));
                }
                let diffs: Vec<_> = conj
                    .diff_constraints()
                    .map(|(a, b, r)| (a.to_string(), b.to_string(), *r))
                    .collect();
                idx.filters.push(FilterEntry {
                    key: key.clone(),
                    needed,
                    diffs,
                });
            }
        }
        idx.accept_all.sort_unstable();
        if idx.accept_all.is_empty() && idx.filters.is_empty() {
            self.streams.remove(stream);
        } else {
            self.streams.insert(stream.clone(), idx);
        }
    }

    /// Streams referenced by a profile.
    fn profile_streams(profile: &Profile) -> Vec<StreamName> {
        profile.streams().cloned().collect()
    }
}

impl<K: Ord + Clone> StreamIndex<K> {
    /// Match one tuple against this stream's index, appending the sorted,
    /// deduplicated keys to `out`. `counts` is a scratch buffer reused
    /// across the tuples of a batch.
    fn match_into(&self, tuple: &Tuple, schema: &Schema, counts: &mut Vec<u32>, out: &mut Vec<K>) {
        out.extend_from_slice(&self.accept_all);
        if !self.filters.is_empty() {
            let lookup = |name: &str| -> Option<&Value> { tuple.get_by_name(schema, name) };
            counts.clear();
            counts.resize(self.filters.len(), 0);
            // Equality fast path: probe (attr, value) for every attribute
            // the tuple actually carries, borrowing both.
            for (i, f) in schema.fields().iter().enumerate() {
                let Some(v) = tuple.get(i) else { continue };
                if let Some(fids) = self
                    .eq_index
                    .get(f.name.as_str())
                    .and_then(|per_value| per_value.get(v))
                {
                    for &fid in fids {
                        counts[fid as usize] += 1;
                    }
                }
            }
            // General constraints.
            for (attr, c, fid) in &self.scan {
                if let Some(v) = lookup(attr) {
                    if c.satisfies(v) {
                        counts[*fid as usize] += 1;
                    }
                }
            }
            for (fid, entry) in self.filters.iter().enumerate() {
                if counts[fid] != entry.needed {
                    continue;
                }
                let diffs_ok = entry.diffs.iter().all(|(a, b, r)| {
                    matches!((lookup(a), lookup(b)), (Some(x), Some(y)) if r.satisfies(x, y))
                });
                if diffs_ok {
                    out.push(entry.key.clone());
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

impl<K: Ord + Clone + Hash + Eq> MatchEngine<K> for CountingMatcher<K> {
    fn insert(&mut self, key: K, profile: Profile) {
        let mut affected: BTreeSet<StreamName> =
            Self::profile_streams(&profile).into_iter().collect();
        if let Some(prev) = self.profiles.insert(key, profile) {
            affected.extend(Self::profile_streams(&prev));
        }
        for s in affected {
            self.rebuild_stream(&s);
        }
    }

    fn remove(&mut self, key: &K) {
        if let Some(prev) = self.profiles.remove(key) {
            for s in Self::profile_streams(&prev) {
                self.rebuild_stream(&s);
            }
        }
    }

    fn matches(&self, tuple: &Tuple, schema: &Schema) -> Vec<K> {
        let Some(idx) = self.streams.get(&tuple.stream) else {
            return Vec::new();
        };
        let mut counts = Vec::new();
        let mut out = Vec::new();
        idx.match_into(tuple, schema, &mut counts, &mut out);
        out
    }

    fn matches_batch(&self, tuples: &[Tuple], schema: &Schema) -> Vec<Vec<K>> {
        let Some(first) = tuples.first() else {
            return Vec::new();
        };
        debug_assert!(
            tuples.iter().all(|t| t.stream == first.stream),
            "matches_batch requires a stream-homogeneous batch"
        );
        let Some(idx) = self.streams.get(&first.stream) else {
            return vec![Vec::new(); tuples.len()];
        };
        let mut counts = Vec::new();
        tuples
            .iter()
            .map(|t| {
                let mut out = Vec::new();
                idx.match_into(t, schema, &mut counts, &mut out);
                out
            })
            .collect()
    }

    fn len(&self) -> usize {
        self.profiles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Conjunction;
    use crate::profile::{ProfileEntry, Projection};
    use cosmos_types::{AttrType, Timestamp};

    fn schema() -> Schema {
        Schema::of(&[
            ("id", AttrType::Int),
            ("price", AttrType::Float),
            ("tag", AttrType::Str),
        ])
    }

    fn tup(id: i64, price: f64, tag: &str) -> Tuple {
        Tuple::new(
            "S",
            Timestamp(0),
            vec![Value::Int(id), Value::Float(price), Value::str(tag)],
        )
    }

    fn profile_eq_id(id: i64) -> Profile {
        let mut f = Conjunction::always();
        f.equals("id", id);
        let mut p = Profile::new();
        p.add_interest("S", Projection::All, f);
        p
    }

    fn profile_price_range(lo: f64, hi: f64) -> Profile {
        let mut f = Conjunction::always();
        f.between("price", lo, hi);
        let mut p = Profile::new();
        p.add_interest("S", Projection::All, f);
        p
    }

    fn both_engines() -> (NaiveMatcher<u32>, CountingMatcher<u32>) {
        (NaiveMatcher::new(), CountingMatcher::new())
    }

    #[test]
    fn matches_equality_and_range() {
        let (mut n, mut c) = both_engines();
        for (k, p) in [
            (1u32, profile_eq_id(7)),
            (2, profile_price_range(0.0, 100.0)),
            (3, Profile::whole_stream("S")),
            (4, Profile::whole_stream("T")),
        ] {
            n.insert(k, p.clone());
            c.insert(k, p);
        }
        let s = schema();
        let t = tup(7, 50.0, "a");
        assert_eq!(n.matches(&t, &s), vec![1, 2, 3]);
        assert_eq!(c.matches(&t, &s), vec![1, 2, 3]);
        let t2 = tup(8, 500.0, "a");
        assert_eq!(n.matches(&t2, &s), vec![3]);
        assert_eq!(c.matches(&t2, &s), vec![3]);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn unknown_stream_matches_nothing() {
        let (mut n, mut c) = both_engines();
        n.insert(1, profile_eq_id(7));
        c.insert(1, profile_eq_id(7));
        let t = Tuple::new("Other", Timestamp(0), vec![Value::Int(7)]);
        let s = Schema::of(&[("id", AttrType::Int)]);
        assert!(n.matches(&t, &s).is_empty());
        assert!(c.matches(&t, &s).is_empty());
    }

    #[test]
    fn remove_uninstalls() {
        let (mut n, mut c) = both_engines();
        n.insert(1, profile_eq_id(7));
        c.insert(1, profile_eq_id(7));
        n.remove(&1);
        c.remove(&1);
        let t = tup(7, 0.0, "a");
        assert!(n.matches(&t, &schema()).is_empty());
        assert!(c.matches(&t, &schema()).is_empty());
        assert!(c.is_empty());
        // removing a missing key is a no-op
        c.remove(&9);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let (mut n, mut c) = both_engines();
        n.insert(1, profile_eq_id(7));
        c.insert(1, profile_eq_id(7));
        n.insert(1, profile_eq_id(8));
        c.insert(1, profile_eq_id(8));
        let s = schema();
        assert!(n.matches(&tup(7, 0.0, "a"), &s).is_empty());
        assert!(c.matches(&tup(7, 0.0, "a"), &s).is_empty());
        assert_eq!(c.matches(&tup(8, 0.0, "a"), &s), vec![1]);
        assert_eq!(n.len(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn multi_filter_profile_matches_once() {
        // Two overlapping filters in one profile must yield the key once.
        let mut p = Profile::new();
        let mut f1 = Conjunction::always();
        f1.between("id", 0, 10);
        let mut f2 = Conjunction::always();
        f2.between("id", 5, 15);
        p.add_entry(
            "S",
            ProfileEntry {
                projection: Projection::All,
                filters: vec![f1, f2],
            },
        );
        let (mut n, mut c) = both_engines();
        n.insert(1, p.clone());
        c.insert(1, p);
        let t = tup(7, 0.0, "a");
        assert_eq!(n.matches(&t, &schema()), vec![1]);
        assert_eq!(c.matches(&t, &schema()), vec![1]);
    }

    #[test]
    fn diff_constraints_checked() {
        let mut f = Conjunction::always();
        f.diff("id", "price", DiffRange::new(0.0, 5.0));
        let mut p = Profile::new();
        p.add_interest("S", Projection::All, f);
        let (mut n, mut c) = both_engines();
        n.insert(1, p.clone());
        c.insert(1, p);
        let s = schema();
        assert_eq!(c.matches(&tup(7, 4.0, "a"), &s), vec![1]); // diff 3
        assert!(c.matches(&tup(7, 0.5, "a"), &s).is_empty()); // diff 6.5
        assert_eq!(
            n.matches(&tup(7, 4.0, "a"), &s),
            c.matches(&tup(7, 4.0, "a"), &s)
        );
    }

    #[test]
    fn ne_constraint_not_on_fast_path() {
        // id = 7 with an exclusion can't use the eq fast path; the scan
        // path must still be correct.
        let mut f = Conjunction::always();
        f.between("id", 7, 7).excludes("id", 7);
        let mut p = Profile::new();
        p.add_interest("S", Projection::All, f);
        let mut c = CountingMatcher::new();
        c.insert(1, p);
        assert!(c.matches(&tup(7, 0.0, "a"), &schema()).is_empty());
    }

    #[test]
    fn deep_unsat_filters_are_pruned_from_the_index() {
        // One dead conjunction (id ≥ price, price ≥ 5, id < 5 — unsat only
        // through interaction) plus one live one. The dead filter must not
        // be indexed at all, and matching must agree with the naive engine.
        let mut dead = Conjunction::always();
        dead.diff(
            "id",
            "price",
            crate::predicate::DiffRange::new(0.0, f64::INFINITY),
        )
        .lower("price", 5, true)
        .upper("id", 5, false);
        assert!(!dead.is_unsat(), "must be invisible to the shallow check");
        let mut live = Conjunction::always();
        live.equals("id", 7);
        let mut p = Profile::new();
        p.add_interest("S", Projection::All, dead);
        p.add_interest("S", Projection::All, live);
        let (mut n, mut c) = both_engines();
        n.insert(1, p.clone());
        c.insert(1, p);
        let idx = &c.streams[&"S".into()];
        assert_eq!(idx.filters.len(), 1, "dead conjunction still indexed");
        assert!(idx.accept_all.is_empty());
        let s = schema();
        let hit = tup(7, 50.0, "a");
        let miss = tup(3, 50.0, "a");
        assert_eq!(n.matches(&hit, &s), vec![1]);
        assert_eq!(c.matches(&hit, &s), vec![1]);
        assert!(n.matches(&miss, &s).is_empty());
        assert!(c.matches(&miss, &s).is_empty());
    }

    #[test]
    fn batch_matches_agree_with_single() {
        let (mut n, mut c) = both_engines();
        for (k, p) in [
            (1u32, profile_eq_id(7)),
            (2, profile_price_range(0.0, 100.0)),
            (3, Profile::whole_stream("S")),
        ] {
            n.insert(k, p.clone());
            c.insert(k, p);
        }
        let s = schema();
        let batch: Vec<Tuple> = (0..20).map(|i| tup(i % 9, (i * 13) as f64, "x")).collect();
        let singles: Vec<Vec<u32>> = batch.iter().map(|t| c.matches(t, &s)).collect();
        assert_eq!(c.matches_batch(&batch, &s), singles);
        assert_eq!(n.matches_batch(&batch, &s), singles);
        // unknown stream: one empty result per tuple
        let other = vec![Tuple::new("Other", Timestamp(0), vec![Value::Int(1)])];
        let os = Schema::of(&[("id", AttrType::Int)]);
        assert_eq!(c.matches_batch(&other, &os), vec![Vec::<u32>::new()]);
        assert!(c.matches_batch(&[], &s).is_empty());
    }

    #[test]
    fn profile_of_only_dead_filters_matches_nothing_but_stays_installed() {
        let mut dead = Conjunction::always();
        dead.diff(
            "id",
            "price",
            crate::predicate::DiffRange::new(0.0, f64::INFINITY),
        )
        .lower("price", 5, true)
        .upper("id", 5, false);
        let mut p = Profile::new();
        p.add_interest("S", Projection::All, dead);
        let mut c = CountingMatcher::new();
        c.insert(1, p);
        assert_eq!(c.len(), 1);
        assert!(c.matches(&tup(7, 50.0, "a"), &schema()).is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::predicate::Conjunction;
    use crate::profile::Projection;
    use cosmos_types::{AttrType, Timestamp};
    use proptest::prelude::*;

    fn schema() -> Schema {
        Schema::of(&[("a", AttrType::Int), ("b", AttrType::Int)])
    }

    #[derive(Debug, Clone)]
    enum Constr {
        Eq(&'static str, i64),
        Ne(&'static str, i64),
        Between(&'static str, i64, i64),
        Lower(&'static str, i64, bool),
        Upper(&'static str, i64, bool),
        Diff(i64, i64),
    }

    fn arb_constr() -> impl Strategy<Value = Constr> {
        let attr = prop_oneof![Just("a"), Just("b")];
        prop_oneof![
            (attr.clone(), -10i64..10).prop_map(|(a, v)| Constr::Eq(a, v)),
            (attr.clone(), -10i64..10).prop_map(|(a, v)| Constr::Ne(a, v)),
            (attr.clone(), -10i64..10, -10i64..10).prop_map(|(a, l, h)| Constr::Between(
                a,
                l.min(h),
                l.max(h)
            )),
            (attr.clone(), -10i64..10, any::<bool>()).prop_map(|(a, v, i)| Constr::Lower(a, v, i)),
            (attr, -10i64..10, any::<bool>()).prop_map(|(a, v, i)| Constr::Upper(a, v, i)),
            (-10i64..10, -10i64..10).prop_map(|(l, h)| Constr::Diff(l.min(h), l.max(h))),
        ]
    }

    fn build_profile(constrs: &[Vec<Constr>]) -> Profile {
        let mut p = Profile::new();
        if constrs.is_empty() {
            return Profile::whole_stream("S");
        }
        for filter in constrs {
            let mut c = Conjunction::always();
            for k in filter {
                match k {
                    Constr::Eq(a, v) => {
                        c.equals(*a, *v);
                    }
                    Constr::Ne(a, v) => {
                        c.excludes(*a, *v);
                    }
                    Constr::Between(a, l, h) => {
                        c.between(*a, *l, *h);
                    }
                    Constr::Lower(a, v, i) => {
                        c.lower(*a, *v, *i);
                    }
                    Constr::Upper(a, v, i) => {
                        c.upper(*a, *v, *i);
                    }
                    Constr::Diff(l, h) => {
                        c.diff("a", "b", DiffRange::new(*l as f64, *h as f64));
                    }
                }
            }
            p.add_interest("S", Projection::All, c);
        }
        p
    }

    proptest! {
        /// The counting matcher and the naive matcher agree on arbitrary
        /// profile sets and tuples.
        #[test]
        fn engines_agree(
            profiles in proptest::collection::vec(
                proptest::collection::vec(
                    proptest::collection::vec(arb_constr(), 0..3), 0..3), 1..6),
            points in proptest::collection::vec((-12i64..12, -12i64..12), 1..12),
        ) {
            let mut naive = NaiveMatcher::new();
            let mut counting = CountingMatcher::new();
            for (i, spec) in profiles.iter().enumerate() {
                let p = build_profile(spec);
                naive.insert(i as u32, p.clone());
                counting.insert(i as u32, p);
            }
            let s = schema();
            for (a, b) in points {
                let t = Tuple::new("S", Timestamp(0), vec![Value::Int(a), Value::Int(b)]);
                prop_assert_eq!(naive.matches(&t, &s), counting.matches(&t, &s));
            }
        }
    }
}
