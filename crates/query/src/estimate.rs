//! Output-rate estimation: the `C(q)` of the paper's benefit formula.
//!
//! "The benefit of the rewriting can be estimated as `Σᵢ C(qᵢ) − C(q)`,
//! where `C(q)` is the estimated rate (bps) of the result stream of `q`."
//! This module derives that rate from per-stream statistics:
//!
//! * selection selectivity from per-attribute `[min, max]` ranges and
//!   distinct counts (uniformity assumption — the standard System-R
//!   model, adequate for *relative* benefit comparisons);
//! * window-join output rate from the classical formula
//!   `λ₁ σ₁ · λ₂ σ₂ · sel⋈ · (T₁ + T₂)` (tuples per second), generalized
//!   left-deep for more streams;
//! * aggregate output rate = matched input rate (the engine emits one
//!   updated row per qualifying arrival);
//! * bytes per second = tuples per second × estimated wire bytes of the
//!   output schema.

use cosmos_cbn::{AttrConstraint, Conjunction};
use cosmos_spe::analyze::AnalyzedQuery;
use cosmos_types::{Schema, StreamName, TimeDelta, Value};
use std::collections::BTreeMap;

/// Selectivity assumed for constraints the statistics cannot estimate.
pub const DEFAULT_SELECTIVITY: f64 = 0.5;
/// Selectivity assumed for a two-sided attribute-difference constraint.
pub const DIFF_RANGE_SELECTIVITY: f64 = 0.25;
/// Selectivity assumed for an equality between two attributes.
pub const DIFF_EQ_SELECTIVITY: f64 = 0.05;
/// Effective window (seconds) substituted for `[Now]` in rate formulas:
/// one timestamp tick.
pub const NOW_WINDOW_SECS: f64 = 0.001;
/// Effective window (seconds) substituted for `[Unbounded]` windows.
pub const UNBOUNDED_WINDOW_SECS: f64 = 86_400.0;
/// Distinct count assumed for attributes without statistics.
pub const DEFAULT_DISTINCT: f64 = 100.0;
/// Per-tuple wire header bytes (stream id + timestamp).
pub const TUPLE_HEADER_BYTES: f64 = 10.0;

/// Statistics for one attribute of a stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttrStats {
    /// Smallest value (numeric attributes).
    pub min: f64,
    /// Largest value (numeric attributes).
    pub max: f64,
    /// Approximate number of distinct values.
    pub distinct: f64,
}

impl AttrStats {
    /// Statistics for a numeric attribute.
    pub fn numeric(min: f64, max: f64, distinct: f64) -> AttrStats {
        AttrStats {
            min,
            max,
            distinct: distinct.max(1.0),
        }
    }

    /// Statistics for a categorical attribute with `distinct` values.
    pub fn categorical(distinct: f64) -> AttrStats {
        AttrStats {
            min: 0.0,
            max: 0.0,
            distinct: distinct.max(1.0),
        }
    }

    fn width(&self) -> f64 {
        (self.max - self.min).max(0.0)
    }
}

/// Statistics for one stream.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StreamStats {
    /// Average arrival rate in tuples per second.
    pub rate: f64,
    /// Per-attribute statistics.
    pub attrs: BTreeMap<String, AttrStats>,
}

impl StreamStats {
    /// Stats for a stream of `rate` tuples/second.
    pub fn with_rate(rate: f64) -> StreamStats {
        StreamStats {
            rate,
            attrs: BTreeMap::new(),
        }
    }

    /// Add statistics for one attribute (builder style).
    pub fn attr(mut self, name: impl Into<String>, stats: AttrStats) -> StreamStats {
        self.attrs.insert(name.into(), stats);
        self
    }
}

/// A catalog of stream schemas and statistics — what a COSMOS processor
/// knows about the streams it can subscribe to.
#[derive(Debug, Clone, Default)]
pub struct StatsCatalog {
    entries: BTreeMap<StreamName, (Schema, StreamStats)>,
}

impl StatsCatalog {
    /// An empty catalog.
    pub fn new() -> StatsCatalog {
        StatsCatalog::default()
    }

    /// Register a stream with its schema and statistics.
    pub fn register(&mut self, stream: impl Into<StreamName>, schema: Schema, stats: StreamStats) {
        self.entries.insert(stream.into(), (schema, stats));
    }

    /// The schema of a stream.
    pub fn schema(&self, stream: &StreamName) -> Option<&Schema> {
        self.entries.get(stream).map(|(s, _)| s)
    }

    /// The statistics of a stream.
    pub fn stats(&self, stream: &StreamName) -> Option<&StreamStats> {
        self.entries.get(stream).map(|(_, s)| s)
    }

    /// A schema-lookup closure usable with
    /// [`AnalyzedQuery::analyze`](cosmos_spe::analyze::AnalyzedQuery::analyze).
    pub fn schema_fn(&self) -> impl Fn(&str) -> Option<Schema> + '_ {
        move |name| self.schema(&StreamName::from(name)).cloned()
    }

    /// Registered stream names.
    pub fn streams(&self) -> impl Iterator<Item = &StreamName> {
        self.entries.keys()
    }

    /// Number of registered streams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

fn value_to_f64(v: &Value) -> Option<f64> {
    v.as_f64()
}

/// Selectivity of one attribute constraint under uniformity.
pub fn constraint_selectivity(c: &AttrConstraint, stats: Option<&AttrStats>) -> f64 {
    if c.is_any() {
        return 1.0;
    }
    if c.is_unsat() {
        return 0.0;
    }
    let Some(st) = stats else {
        return DEFAULT_SELECTIVITY;
    };
    // Point constraint: 1/distinct — but a point outside a numeric
    // domain matches nothing (categorical stats have no range to check).
    if let (Some((lo, true)), Some((hi, true))) = (&c.interval.lo, &c.interval.hi) {
        if lo == hi {
            if c.excluded.contains(lo) {
                return 0.0;
            }
            if st.width() > 0.0 {
                if let Some(v) = value_to_f64(lo) {
                    if v < st.min || v > st.max {
                        return 0.0;
                    }
                }
            }
            return 1.0 / st.distinct;
        }
    }
    let width = st.width();
    let sel = if width <= 0.0 {
        // Constant or categorical attribute: interval either covers the
        // single point or not; fall back to the default when unknown.
        DEFAULT_SELECTIVITY
    } else {
        let lo = c
            .interval
            .lo
            .as_ref()
            .and_then(|(v, _)| value_to_f64(v))
            .unwrap_or(st.min)
            .max(st.min);
        let hi = c
            .interval
            .hi
            .as_ref()
            .and_then(|(v, _)| value_to_f64(v))
            .unwrap_or(st.max)
            .min(st.max);
        ((hi - lo) / width).clamp(0.0, 1.0)
    };
    // Each excluded point removes one value's worth of mass, 1/distinct
    // — but only if it lies inside both the constraint interval and the
    // stats domain (an out-of-domain point carries no mass under
    // uniformity), and as an absolute subtraction, matching the exact
    // count `(rows in interval − excluded rows) / rows in domain`.
    let in_domain =
        |e: &Value| width <= 0.0 || value_to_f64(e).is_none_or(|v| v >= st.min && v <= st.max);
    let inside = c
        .excluded
        .iter()
        .filter(|e| c.interval.contains(e) && in_domain(e))
        .count() as f64;
    (sel - inside / st.distinct).clamp(0.0, 1.0)
}

/// Selectivity of a whole conjunction (independence assumption).
pub fn conjunction_selectivity(conj: &Conjunction, stats: Option<&StreamStats>) -> f64 {
    let mut sel = 1.0;
    for (attr, c) in conj.attr_constraints() {
        sel *= constraint_selectivity(c, stats.and_then(|s| s.attrs.get(attr)));
    }
    for (_, _, r) in conj.diff_constraints() {
        sel *= if r.is_any() {
            1.0
        } else if r.is_empty() {
            0.0
        } else if r.lo == r.hi {
            DIFF_EQ_SELECTIVITY
        } else if r.lo == f64::NEG_INFINITY || r.hi == f64::INFINITY {
            DEFAULT_SELECTIVITY
        } else {
            DIFF_RANGE_SELECTIVITY
        };
    }
    sel
}

fn effective_window_secs(w: TimeDelta) -> f64 {
    if w.is_infinite() {
        UNBOUNDED_WINDOW_SECS
    } else if w == TimeDelta::ZERO {
        NOW_WINDOW_SECS
    } else {
        w.as_secs_f64()
    }
}

/// Estimated result-stream rate in tuples per second.
pub fn output_tuples_per_sec(q: &AnalyzedQuery, catalog: &StatsCatalog) -> f64 {
    // Per-stream matched arrival rate λᵢ σᵢ.
    let matched: Vec<f64> = q
        .streams
        .iter()
        .zip(&q.selections)
        .map(|(b, sel)| {
            let stats = catalog.stats(&b.stream);
            let rate = stats.map(|s| s.rate).unwrap_or(1.0);
            rate * conjunction_selectivity(sel, stats)
        })
        .collect();
    if q.streams.len() == 1 {
        // Select-project and aggregates: one output per matched arrival.
        return matched[0];
    }
    // Left-deep join cascade: fold streams in FROM order.
    let mut rate = matched[0];
    let mut acc_window = effective_window_secs(q.streams[0].window);
    #[allow(clippy::needless_range_loop)] // index used against several parallel arrays
    for i in 1..q.streams.len() {
        // Join selectivity: product over join predicates connecting
        // stream i to the streams already folded in.
        let mut join_sel = 1.0;
        let mut connected = false;
        for jp in &q.joins {
            let side = |qa: &cosmos_spe::analyze::QAttr| q.stream_index(&qa.binding);
            let (li, ri) = (side(&jp.left), side(&jp.right));
            let touches_i = li == Some(i) || ri == Some(i);
            let touches_prev = li.is_some_and(|x| x < i) || ri.is_some_and(|x| x < i);
            if touches_i && touches_prev {
                connected = true;
                let distinct_of = |qa: &cosmos_spe::analyze::QAttr| {
                    let si = q.stream_index(&qa.binding).expect("bound");
                    catalog
                        .stats(&q.streams[si].stream)
                        .and_then(|s| s.attrs.get(&qa.name))
                        .map(|a| a.distinct)
                        .unwrap_or(DEFAULT_DISTINCT)
                };
                join_sel *= 1.0 / distinct_of(&jp.left).max(distinct_of(&jp.right)).max(1.0);
            }
        }
        if !connected {
            // Cross join: every pair within the window combines.
            join_sel = 1.0;
        }
        let wi = effective_window_secs(q.streams[i].window);
        rate = rate * matched[i] * join_sel * (acc_window + wi);
        acc_window = acc_window.max(wi);
    }
    rate
}

/// `C(q)`: estimated result-stream rate in **bytes per second** — the
/// quantity the paper's grouping benefit `Σᵢ C(qᵢ) − C(q)` is defined on.
pub fn cost_bps(q: &AnalyzedQuery, catalog: &StatsCatalog) -> f64 {
    let bytes = q.output_schema.estimated_tuple_bytes() as f64 + TUPLE_HEADER_BYTES;
    output_tuples_per_sec(q, catalog) * bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_cql::parse_query;
    use cosmos_spe::analyze::AnalyzedQuery;
    use cosmos_types::AttrType;

    fn catalog() -> StatsCatalog {
        let mut c = StatsCatalog::new();
        c.register(
            "S",
            Schema::of(&[
                ("id", AttrType::Int),
                ("x", AttrType::Float),
                ("timestamp", AttrType::Int),
            ]),
            StreamStats::with_rate(10.0)
                .attr("id", AttrStats::categorical(100.0))
                .attr("x", AttrStats::numeric(0.0, 100.0, 1000.0)),
        );
        c.register(
            "T",
            Schema::of(&[
                ("id", AttrType::Int),
                ("y", AttrType::Float),
                ("timestamp", AttrType::Int),
            ]),
            StreamStats::with_rate(2.0).attr("id", AttrStats::categorical(100.0)),
        );
        c
    }

    fn q(text: &str) -> AnalyzedQuery {
        let c = catalog();
        AnalyzedQuery::analyze(&parse_query(text).unwrap(), c.schema_fn()).unwrap()
    }

    #[test]
    fn selection_selectivity_scales_rate() {
        let cat = catalog();
        let full = q("SELECT id FROM S [Now]");
        assert!((output_tuples_per_sec(&full, &cat) - 10.0).abs() < 1e-9);
        let half = q("SELECT id FROM S [Now] WHERE x < 50.0");
        assert!((output_tuples_per_sec(&half, &cat) - 5.0).abs() < 1e-9);
        let tenth = q("SELECT id FROM S [Now] WHERE x BETWEEN 0.0 AND 10.0");
        assert!((output_tuples_per_sec(&tenth, &cat) - 1.0).abs() < 1e-9);
        let point = q("SELECT id FROM S [Now] WHERE id = 7");
        assert!((output_tuples_per_sec(&point, &cat) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn bytes_scale_with_schema_width() {
        let cat = catalog();
        let narrow = q("SELECT id FROM S [Now]");
        let wide = q("SELECT id, x, timestamp FROM S [Now]");
        assert!(cost_bps(&wide, &cat) > cost_bps(&narrow, &cat));
        // narrow: 10 tuples/s × (8 + 10) bytes
        assert!((cost_bps(&narrow, &cat) - 180.0).abs() < 1e-9);
    }

    #[test]
    fn join_rate_follows_window_formula() {
        let cat = catalog();
        let j = q(
            "SELECT S.id FROM S [Range 10 Second] S, T [Range 20 Second] T \
                   WHERE S.id = T.id",
        );
        // λ1 λ2 / distinct × (T1 + T2) = 10 × 2 / 100 × 30 = 6
        assert!((output_tuples_per_sec(&j, &cat) - 6.0).abs() < 1e-9);
        // widening a window increases the rate
        let j2 = q(
            "SELECT S.id FROM S [Range 40 Second] S, T [Range 20 Second] T \
                    WHERE S.id = T.id",
        );
        assert!(output_tuples_per_sec(&j2, &cat) > output_tuples_per_sec(&j, &cat));
    }

    #[test]
    fn now_and_unbounded_windows_have_finite_rates() {
        let cat = catalog();
        let now = q("SELECT S.id FROM S [Now] S, T [Now] T WHERE S.id = T.id");
        let r = output_tuples_per_sec(&now, &cat);
        assert!(r > 0.0 && r.is_finite());
        let unb = q("SELECT S.id FROM S [Unbounded] S, T [Now] T WHERE S.id = T.id");
        assert!(output_tuples_per_sec(&unb, &cat).is_finite());
    }

    #[test]
    fn unknown_stream_defaults_are_sane() {
        let cat = StatsCatalog::new();
        let mut full_cat = catalog();
        full_cat.register(
            "U",
            Schema::of(&[("a", AttrType::Int)]),
            StreamStats::default(),
        );
        let qq = AnalyzedQuery::analyze(
            &parse_query("SELECT a FROM U [Now] WHERE a > 5").unwrap(),
            full_cat.schema_fn(),
        )
        .unwrap();
        let r = output_tuples_per_sec(&qq, &cat);
        assert!(r.is_finite() && r >= 0.0);
        assert!(cat.is_empty());
        assert_eq!(full_cat.len(), 3);
        assert_eq!(full_cat.streams().count(), 3);
    }

    #[test]
    fn hull_rate_vs_member_rates_drive_grouping() {
        // Overlapping ranges: hull rate < sum of member rates (benefit).
        let cat = catalog();
        let a = q("SELECT id, x FROM S [Now] WHERE x BETWEEN 0.0 AND 60.0");
        let b = q("SELECT id, x FROM S [Now] WHERE x BETWEEN 40.0 AND 100.0");
        let rep = crate::merge::merge(&a, &b).unwrap();
        let (ca, cb, cr) = (cost_bps(&a, &cat), cost_bps(&b, &cat), cost_bps(&rep, &cat));
        assert!(cr < ca + cb, "hull {cr} vs members {ca}+{cb}");
        // Disjoint narrow ranges: hull covers the gap → negative benefit.
        let c = q("SELECT id, x FROM S [Now] WHERE x BETWEEN 0.0 AND 5.0");
        let d = q("SELECT id, x FROM S [Now] WHERE x BETWEEN 95.0 AND 100.0");
        let rep2 = crate::merge::merge(&c, &d).unwrap();
        assert!(cost_bps(&rep2, &cat) > cost_bps(&c, &cat) + cost_bps(&d, &cat));
    }

    #[test]
    fn constraint_selectivity_edge_cases() {
        use cosmos_cbn::Interval;
        let st = AttrStats::numeric(0.0, 100.0, 100.0);
        // unsatisfiable
        let c = AttrConstraint::from_interval(Interval::closed(Value::Int(10), Value::Int(0)));
        assert_eq!(constraint_selectivity(&c, Some(&st)), 0.0);
        // any
        assert_eq!(
            constraint_selectivity(&AttrConstraint::any(), Some(&st)),
            1.0
        );
        // no stats
        let r = AttrConstraint::from_interval(Interval::closed(Value::Int(0), Value::Int(10)));
        assert_eq!(constraint_selectivity(&r, None), DEFAULT_SELECTIVITY);
        // excluded point inside the interval reduces selectivity
        let mut with_ne = r.clone();
        with_ne.excluded.insert(Value::Int(5));
        assert!(
            constraint_selectivity(&with_ne, Some(&st)) < constraint_selectivity(&r, Some(&st))
        );
        // excluded point of a point interval kills it
        let mut dead = AttrConstraint::from_interval(Interval::point(Value::Int(5)));
        dead.excluded.insert(Value::Int(5));
        assert_eq!(constraint_selectivity(&dead, Some(&st)), 0.0);
    }
}
