#![forbid(unsafe_code)]
//! The COSMOS query layer (Section 4 of the paper).
//!
//! This crate implements the paper's primary algorithmic contribution:
//! rewriting groups of continuous queries with overlapping results into a
//! single **representative query** whose result stream is shipped once
//! through the content-based network and *split back* into the original
//! per-user result streams by ordinary CBN filters.
//!
//! * [`containment`] — continuous-query containment: Definition 1 made
//!   checkable through Theorem 1 (select-project-join queries: `∞`-window
//!   containment plus component-wise window containment `T¹ᵢ ≤ T²ᵢ`) and
//!   Theorem 2 (aggregate queries: additionally *equal* windows).
//! * [`mod@merge`] — representative-query synthesis ("merging the query
//!   predicates"): selection-predicate hulls, per-stream window maxima,
//!   output-attribute union (plus the timestamp attributes needed for
//!   splitting), and the **re-tightened profile** construction — filters
//!   of the exact shape the paper shows for `p1`/`p2`, e.g.
//!   `−3h ≤ O.timestamp − C.timestamp ≤ 0` (Lemma 1).
//! * [`estimate`] — the benefit estimator: `C(q)`, the expected output
//!   rate of a query in bytes per second, derived from per-stream rate
//!   and attribute statistics.
//! * [`grouping`] — the incremental greedy grouping algorithm: "each new
//!   query is assigned to the query group that can achieve the maximum
//!   benefit", where a group's benefit is `Σᵢ C(qᵢ) − C(q)`.
//!
//! The load-bearing invariant, property-tested against the SPE's
//! brute-force oracle: **filtering a representative query's result
//! stream through a member's re-tightened profile reproduces exactly the
//! result stream of running that member directly.**

pub mod containment;
pub mod estimate;
pub mod grouping;
pub mod merge;

pub use containment::{contained, correspondence};
pub use estimate::{AttrStats, StatsCatalog, StreamStats};
pub use grouping::{GroupManager, GroupingOutcome, QueryGroup};
pub use merge::{merge, retighten_profile, to_query};
