//! Continuous-query containment (Definition 1, Theorems 1 and 2).
//!
//! The paper defines `q1 ⊑ q2` as: at every application time instance
//! `τ` and for every stream instance `S`, the temporal result `q1(S, τ)`
//! is derivable from `q2(S, τ)` by the CBN's filter/projection mechanism.
//! Theorem 1 reduces the check for select-project-join queries to
//! (1) containment of the `∞`-window versions and (2) component-wise
//! window containment `T¹ᵢ ≤ T²ᵢ`; Theorem 2 covers aggregate queries,
//! requiring *equal* windows instead.
//!
//! For the conjunctive SPJ fragment COSMOS handles, `∞`-window
//! containment is decided structurally: the streams must correspond, the
//! weaker query's join predicates must follow from the stronger one's
//! (modulo the transitive closure of attribute equivalence), the stronger
//! query's per-stream selections must imply the weaker's, and the
//! stronger query's output attributes must be available in the weaker's
//! output. All checks are *sound* (a `true` answer is always correct);
//! like any practical containment test over this fragment they are
//! conservative in the presence of constructs the representation cannot
//! compare.

use cosmos_spe::analyze::{AnalyzedQuery, OutputColumn, QAttr};
use cosmos_types::FxHashMap;
use std::collections::BTreeSet;

/// Find the stream correspondence `q1.streams[i] ↔ q2.streams[map[i]]`:
/// a bijection pairing streams of the same name.
///
/// Streams appearing more than once (self joins) are matched
/// positionally among their duplicates, which is deterministic and
/// agrees between [`contained`], [`crate::merge::merge`] and
/// [`crate::merge::retighten_profile`]. Returns `None` when the stream
/// multisets differ.
pub fn correspondence(q1: &AnalyzedQuery, q2: &AnalyzedQuery) -> Option<Vec<usize>> {
    if q1.streams.len() != q2.streams.len() {
        return None;
    }
    let mut used = vec![false; q2.streams.len()];
    let mut map = Vec::with_capacity(q1.streams.len());
    for b1 in &q1.streams {
        let j = q2
            .streams
            .iter()
            .enumerate()
            .position(|(j, b2)| !used[j] && b2.stream == b1.stream)?;
        used[j] = true;
        map.push(j);
    }
    Some(map)
}

/// Rename a qualified attribute from `q1`'s binding namespace into
/// `q2`'s, under a correspondence.
fn rename(qa: &QAttr, q1: &AnalyzedQuery, q2: &AnalyzedQuery, map: &[usize]) -> Option<QAttr> {
    let i = q1.stream_index(&qa.binding)?;
    Some(QAttr::new(&q2.streams[map[i]].binding, &qa.name))
}

/// Union-find over qualified attributes, used to close join predicates
/// transitively.
struct AttrUnion {
    parent: FxHashMap<QAttr, QAttr>,
}

impl AttrUnion {
    fn new() -> Self {
        AttrUnion {
            parent: FxHashMap::default(),
        }
    }

    fn find(&mut self, a: &QAttr) -> QAttr {
        let p = match self.parent.get(a) {
            Some(p) if p != a => p.clone(),
            _ => return a.clone(),
        };
        let root = self.find(&p);
        self.parent.insert(a.clone(), root.clone());
        root
    }

    fn union(&mut self, a: &QAttr, b: &QAttr) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn same(&mut self, a: &QAttr, b: &QAttr) -> bool {
        self.find(a) == self.find(b)
    }
}

/// The output attributes of a query, as a set (aggregate columns are
/// represented by their printed name).
fn output_signature(
    q: &AnalyzedQuery,
    self_map: Option<(&AnalyzedQuery, &[usize])>,
) -> BTreeSet<String> {
    q.output
        .iter()
        .filter_map(|c| match (c, self_map) {
            (OutputColumn::Attr(a), Some((target, map))) => {
                rename(a, q, target, map).map(|qa| qa.qualified())
            }
            (OutputColumn::Attr(a), None) => Some(a.qualified()),
            (OutputColumn::Agg { func, arg }, Some((target, map))) => {
                let arg = match arg {
                    Some(a) => Some(rename(a, q, target, map)?.qualified()),
                    None => None,
                };
                Some(format!("{func}({})", arg.unwrap_or_else(|| "*".into())))
            }
            (OutputColumn::Agg { func, arg }, None) => Some(format!(
                "{func}({})",
                arg.as_ref()
                    .map(|a| a.qualified())
                    .unwrap_or_else(|| "*".into())
            )),
        })
        .collect()
}

/// Check the `∞`-window (relational) part of containment: does every
/// combination satisfying `q1`'s predicates satisfy `q2`'s, and is
/// `q1`'s output derivable from `q2`'s?
fn infinity_contained(q1: &AnalyzedQuery, q2: &AnalyzedQuery, map: &[usize]) -> bool {
    // Join predicates of q2 must follow from q1's (transitive closure).
    let mut uf = AttrUnion::new();
    for j in &q1.joins {
        let (Some(l), Some(r)) = (rename(&j.left, q1, q2, map), rename(&j.right, q1, q2, map))
        else {
            return false;
        };
        uf.union(&l, &r);
    }
    for j in &q2.joins {
        if !uf.same(&j.left, &j.right) {
            return false;
        }
    }
    // q1's selections must imply q2's, stream by stream.
    for (i1, &i2) in map.iter().enumerate() {
        if !q1.selections[i1].implies(&q2.selections[i2]) {
            return false;
        }
    }
    // q1's output must be a subset of q2's output (so a projection of
    // q2's result stream can reproduce it).
    let o1 = output_signature(q1, Some((q2, map)));
    let o2 = output_signature(q2, None);
    if !o1.is_subset(&o2) {
        return false;
    }
    // DISTINCT changes multiset semantics in ways CBN filtering cannot
    // reproduce; only identical distinct-ness is comparable.
    q1.distinct == q2.distinct
}

/// `q1 ⊑ q2` for select-project-join continuous queries (Theorem 1).
pub fn spj_contained(q1: &AnalyzedQuery, q2: &AnalyzedQuery) -> bool {
    if q1.is_aggregate() || q2.is_aggregate() {
        return false;
    }
    let Some(map) = correspondence(q1, q2) else {
        return false;
    };
    // Condition (2): T¹ᵢ ≤ T²ᵢ for every stream.
    for (i1, &i2) in map.iter().enumerate() {
        if q1.streams[i1].window > q2.streams[i2].window {
            return false;
        }
    }
    // Condition (1): Q∞₁ ⊑ Q∞₂.
    infinity_contained(q1, q2, &map)
}

/// `q1 ⊑ q2` for aggregate continuous queries (Theorem 2): as Theorem 1
/// but with *equal* windows, and identical grouping.
pub fn agg_contained(q1: &AnalyzedQuery, q2: &AnalyzedQuery) -> bool {
    if !q1.is_aggregate() || !q2.is_aggregate() {
        return false;
    }
    let Some(map) = correspondence(q1, q2) else {
        return false;
    };
    for (i1, &i2) in map.iter().enumerate() {
        if q1.streams[i1].window != q2.streams[i2].window {
            return false;
        }
    }
    // Grouping must be identical (same partitioning of the stream).
    let g1: BTreeSet<_> = q1
        .group_by
        .iter()
        .filter_map(|g| rename(g, q1, q2, &map).map(|q| q.qualified()))
        .collect();
    let g2: BTreeSet<_> = q2.group_by.iter().map(|g| g.qualified()).collect();
    if g1 != g2 || q1.group_by.len() != q2.group_by.len() {
        return false;
    }
    // An aggregate value is only reconstructible from the representative
    // when the member's extra selectivity acts on whole groups, i.e. its
    // selection attributes are all grouping attributes. The containment
    // check itself additionally needs q1's selections to imply q2's and
    // q1's outputs to be available — delegated to the ∞ check.
    for (i1, sel) in q1.selections.iter().enumerate() {
        for attr in sel.referenced_attrs() {
            let qa = QAttr::new(&q1.streams[i1].binding, &attr);
            let Some(renamed) = rename(&qa, q1, q2, &map) else {
                return false;
            };
            let grouped = q2
                .group_by
                .iter()
                .any(|g| g.qualified() == renamed.qualified());
            // Attributes constrained identically in q2 are fine too: the
            // constraint then isn't "extra" selectivity.
            let same_constraint = {
                let i2 = map[i1];
                q2.selections[i2].constraint_for(&attr) == sel.constraint_for(&attr)
            };
            if !grouped && !same_constraint {
                return false;
            }
        }
    }
    infinity_contained(q1, q2, &map)
}

/// `q1 ⊑ q2`: dispatch to the applicable theorem.
pub fn contained(q1: &AnalyzedQuery, q2: &AnalyzedQuery) -> bool {
    if q1.is_aggregate() || q2.is_aggregate() {
        agg_contained(q1, q2)
    } else {
        spj_contained(q1, q2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_cql::parse_query;
    use cosmos_types::{AttrType, Schema};

    fn catalog(name: &str) -> Option<Schema> {
        match name {
            "OpenAuction" => Some(Schema::of(&[
                ("itemID", AttrType::Int),
                ("sellerID", AttrType::Int),
                ("start_price", AttrType::Float),
                ("timestamp", AttrType::Int),
            ])),
            "ClosedAuction" => Some(Schema::of(&[
                ("itemID", AttrType::Int),
                ("buyerID", AttrType::Int),
                ("timestamp", AttrType::Int),
            ])),
            "Sensors" => Some(Schema::of(&[
                ("station", AttrType::Int),
                ("temperature", AttrType::Float),
                ("timestamp", AttrType::Int),
            ])),
            _ => None,
        }
    }

    fn q(text: &str) -> AnalyzedQuery {
        AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog).unwrap()
    }

    const Q1: &str = "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C \
                      WHERE O.itemID = C.itemID";
    const Q2: &str = "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp \
                      FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C \
                      WHERE O.itemID = C.itemID";
    const Q3: &str = "SELECT O.*, C.buyerID, C.timestamp \
                      FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C \
                      WHERE O.itemID = C.itemID";

    #[test]
    fn table1_containments_hold() {
        // The paper's running example: q3 contains both q1 and q2.
        assert!(contained(&q(Q1), &q(Q3)));
        assert!(contained(&q(Q2), &q(Q3)));
        // and not vice versa (q3 has a larger window / more outputs)
        assert!(!contained(&q(Q3), &q(Q1)));
        assert!(!contained(&q(Q3), &q(Q2)));
        // q1 and q2 are incomparable (different outputs/windows)
        assert!(!contained(&q(Q1), &q(Q2)));
        assert!(!contained(&q(Q2), &q(Q1)));
        // reflexive
        assert!(contained(&q(Q3), &q(Q3)));
    }

    #[test]
    fn window_condition_is_necessary() {
        let narrow = q("SELECT O.itemID FROM OpenAuction [Range 1 Hour] O, \
                        ClosedAuction [Now] C WHERE O.itemID = C.itemID");
        let wide = q("SELECT O.itemID FROM OpenAuction [Range 2 Hour] O, \
                      ClosedAuction [Now] C WHERE O.itemID = C.itemID");
        assert!(contained(&narrow, &wide));
        assert!(!contained(&wide, &narrow));
    }

    #[test]
    fn selection_implication_is_checked() {
        let tight = q("SELECT station FROM Sensors [Now] WHERE temperature > 30.0");
        let loose = q("SELECT station FROM Sensors [Now] WHERE temperature > 10.0");
        assert!(contained(&tight, &loose));
        assert!(!contained(&loose, &tight));
    }

    #[test]
    fn output_subset_is_required() {
        let small = q("SELECT station FROM Sensors [Now]");
        let big = q("SELECT station, temperature FROM Sensors [Now]");
        assert!(contained(&small, &big));
        assert!(!contained(&big, &small));
    }

    #[test]
    fn missing_join_predicate_blocks_containment() {
        let joined = q(
            "SELECT O.itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C \
                        WHERE O.itemID = C.itemID",
        );
        let cross = q("SELECT O.itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C");
        // joined ⊑ cross (fewer predicates = weaker), not vice versa
        assert!(contained(&joined, &cross));
        assert!(!contained(&cross, &joined));
    }

    #[test]
    fn transitive_join_closure() {
        // q1 joins O.itemID = C.itemID and O.itemID = C.buyerID, which
        // transitively implies C.itemID = C.buyerID... but that is a
        // same-stream predicate in q2's FROM shape; use three-way
        // equality through two predicates instead.
        let strong = q(
            "SELECT O.itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C \
                        WHERE O.itemID = C.itemID AND O.sellerID = C.itemID",
        );
        let weak = q(
            "SELECT O.itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C \
                      WHERE O.sellerID = C.itemID",
        );
        assert!(contained(&strong, &weak));
        assert!(!contained(&weak, &strong));
    }

    #[test]
    fn different_streams_are_incomparable() {
        let a = q("SELECT station FROM Sensors [Now]");
        let b = q("SELECT O.itemID FROM OpenAuction [Now] O");
        assert!(!contained(&a, &b));
        assert!(correspondence(&a, &b).is_none());
    }

    #[test]
    fn distinct_must_match() {
        let d = q("SELECT DISTINCT station FROM Sensors [Now]");
        let nd = q("SELECT station FROM Sensors [Now]");
        assert!(!contained(&d, &nd));
        assert!(!contained(&nd, &d));
        assert!(contained(&d, &d));
    }

    #[test]
    fn aggregate_containment_needs_equal_windows() {
        let a5 = q(
            "SELECT station, AVG(temperature) FROM Sensors [Range 5 Minute] \
                    GROUP BY station",
        );
        let a10 = q(
            "SELECT station, AVG(temperature) FROM Sensors [Range 10 Minute] \
                     GROUP BY station",
        );
        // Theorem 2: equal windows required — even the smaller window is
        // not contained in the larger one for aggregates.
        assert!(!contained(&a5, &a10));
        assert!(!contained(&a10, &a5));
        assert!(contained(&a5, &a5));
    }

    #[test]
    fn aggregate_containment_with_group_filters() {
        let all = q("SELECT station, AVG(temperature), COUNT(*) \
                     FROM Sensors [Range 5 Minute] GROUP BY station");
        let one = q("SELECT station, AVG(temperature) \
                     FROM Sensors [Range 5 Minute] WHERE station = 3 GROUP BY station");
        // `one` filters on the grouping attribute → reconstructible
        assert!(contained(&one, &all));
        assert!(!contained(&all, &one));
    }

    #[test]
    fn aggregate_with_non_group_filter_is_not_contained() {
        let all = q("SELECT station, COUNT(*) FROM Sensors [Range 5 Minute] GROUP BY station");
        let hot = q("SELECT station, COUNT(*) FROM Sensors [Range 5 Minute] \
                     WHERE temperature > 30.0 GROUP BY station");
        // counting only hot readings is NOT derivable from counting all
        assert!(!contained(&hot, &all));
    }

    #[test]
    fn aggregate_vs_spj_incomparable() {
        let agg = q("SELECT station, COUNT(*) FROM Sensors [Now] GROUP BY station");
        let spj = q("SELECT station FROM Sensors [Now]");
        assert!(!contained(&agg, &spj));
        assert!(!contained(&spj, &agg));
    }

    #[test]
    fn self_join_correspondence_is_positional() {
        let a = q(
            "SELECT A.itemID FROM OpenAuction [Range 1 Hour] A, OpenAuction [Now] B \
                   WHERE A.itemID = B.itemID",
        );
        let b = q(
            "SELECT X.itemID FROM OpenAuction [Range 2 Hour] X, OpenAuction [Now] Y \
                   WHERE X.itemID = Y.itemID",
        );
        let map = correspondence(&a, &b).unwrap();
        assert_eq!(map, vec![0, 1]);
        assert!(contained(&a, &b));
    }
}
