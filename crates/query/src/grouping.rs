//! Incremental greedy query grouping.
//!
//! "Each processor maintains a number of query groups such that queries
//! inside each group have overlapping results and it is beneficial to
//! rewrite these queries into one query q which contains all the member
//! queries. … An incremental greedy algorithm is used to optimize the
//! query grouping, where each new query is assigned to the query group
//! that can achieve the maximum benefit." (Section 4)
//!
//! The [`GroupManager`] implements that algorithm. Groups are indexed by
//! their *compatibility key* (stream multiset, aggregation shape,
//! grouping attributes) so a new query only attempts merges against
//! plausibly mergeable groups; the marginal gain of joining a group is
//! `C(q) + C(rep) − C(rep ⊕ q)` — the bandwidth saved versus delivering
//! the query's result separately — and the query joins the group with
//! the maximum positive gain, or founds a new group otherwise.

use crate::estimate::{cost_bps, StatsCatalog};
use crate::merge::{merge, retighten_profile};
use cosmos_cbn::Profile;
use cosmos_spe::analyze::AnalyzedQuery;
use cosmos_types::{CosmosError, FxHashMap, GroupId, QueryId, Result, StreamName};
use std::collections::BTreeMap;

/// A group of queries sharing one representative query.
#[derive(Debug, Clone)]
pub struct QueryGroup {
    /// The group id.
    pub id: GroupId,
    /// The name of the representative's shared result stream.
    pub result_stream: StreamName,
    /// The member queries.
    pub members: Vec<(QueryId, AnalyzedQuery)>,
    /// The representative query (equals the single member for
    /// singleton groups).
    pub representative: AnalyzedQuery,
}

impl QueryGroup {
    /// The paper's group benefit: `Σᵢ C(qᵢ) − C(rep)` in bytes/second.
    pub fn benefit(&self, catalog: &StatsCatalog) -> f64 {
        let members: f64 = self.members.iter().map(|(_, q)| cost_bps(q, catalog)).sum();
        members - cost_bps(&self.representative, catalog)
    }
}

/// Result of inserting one query into the group manager.
#[derive(Debug, Clone)]
pub struct GroupingOutcome {
    /// The group the query landed in.
    pub group: GroupId,
    /// The shared result stream to subscribe to.
    pub result_stream: StreamName,
    /// The re-tightened profile that extracts this query's results from
    /// the shared stream.
    pub profile: Profile,
    /// Whether the query joined an existing group (vs founding one).
    pub joined_existing: bool,
    /// Whether the representative query changed (the processor must
    /// replace the running representative and re-advertise).
    pub rep_changed: bool,
    /// When the representative changed, the re-tightened profiles of the
    /// *other* members, recomputed against the new representative. A
    /// member's old profile may be too loose once the shared stream
    /// widens (its constraints were skipped as "already enforced" by the
    /// old representative), so every member's subscription must be
    /// refreshed.
    pub updated_profiles: Vec<(QueryId, Profile)>,
}

/// The per-processor grouping state.
#[derive(Debug, Clone, Default)]
pub struct GroupManager {
    groups: BTreeMap<GroupId, QueryGroup>,
    /// Compatibility key → groups with that key.
    index: FxHashMap<String, Vec<GroupId>>,
    /// Query → its group and re-tightened profile.
    placements: FxHashMap<QueryId, (GroupId, Profile)>,
    next_group: u64,
    /// Namespace prefix for generated result-stream names.
    stream_prefix: String,
}

/// Minimum marginal gain (bytes/second) required to join a group rather
/// than founding a new one.
const GAIN_EPSILON: f64 = 1e-9;

/// Compatibility key: queries can only ever merge when these agree.
fn compat_key(q: &AnalyzedQuery) -> String {
    let mut streams: Vec<&str> = q.streams.iter().map(|b| b.stream.as_str()).collect();
    streams.sort_unstable();
    let gb: Vec<String> = {
        let mut g: Vec<String> = q.group_by.iter().map(|g| g.name.clone()).collect();
        g.sort_unstable();
        g
    };
    format!(
        "{}|agg={}|distinct={}|gb={}",
        streams.join(","),
        q.is_aggregate(),
        q.distinct,
        gb.join(",")
    )
}

impl GroupManager {
    /// A manager generating result streams named `{prefix}::g{N}`.
    pub fn new(stream_prefix: impl Into<String>) -> GroupManager {
        GroupManager {
            stream_prefix: stream_prefix.into(),
            ..GroupManager::default()
        }
    }

    /// Insert a query, greedily assigning it to the best group.
    pub fn insert(
        &mut self,
        qid: QueryId,
        q: AnalyzedQuery,
        catalog: &StatsCatalog,
    ) -> Result<GroupingOutcome> {
        if self.placements.contains_key(&qid) {
            return Err(CosmosError::Query(format!("query {qid} already inserted")));
        }
        let key = compat_key(&q);
        let cq = cost_bps(&q, catalog);
        // Find the candidate group with the maximum positive gain.
        let mut best: Option<(GroupId, AnalyzedQuery, f64)> = None;
        if let Some(candidates) = self.index.get(&key) {
            for &gid in candidates {
                let group = &self.groups[&gid];
                let Ok(candidate_rep) = merge(&group.representative, &q) else {
                    continue;
                };
                let gain = cq + cost_bps(&group.representative, catalog)
                    - cost_bps(&candidate_rep, catalog);
                if gain > GAIN_EPSILON && best.as_ref().is_none_or(|(_, _, bg)| gain > *bg) {
                    best = Some((gid, candidate_rep, gain));
                }
            }
        }
        match best {
            Some((gid, new_rep, _)) => {
                // Compute the member profile against the new representative
                // *before* mutating state, so failures leave us consistent.
                let result_stream = self.groups[&gid].result_stream.clone();
                let profile = retighten_profile(&q, &new_rep, &result_stream)?;
                let rep_changed = self.groups[&gid].representative != new_rep;
                // A widened representative invalidates the existing
                // members' profiles: recompute them first.
                let mut updated_profiles = Vec::new();
                if rep_changed {
                    for (mid, member) in &self.groups[&gid].members {
                        let p = retighten_profile(member, &new_rep, &result_stream)?;
                        updated_profiles.push((*mid, p));
                    }
                }
                let group = self.groups.get_mut(&gid).expect("candidate exists");
                group.representative = new_rep;
                group.members.push((qid, q));
                for (mid, p) in &updated_profiles {
                    self.placements.insert(*mid, (gid, p.clone()));
                }
                self.placements.insert(qid, (gid, profile.clone()));
                Ok(GroupingOutcome {
                    group: gid,
                    result_stream,
                    profile,
                    joined_existing: true,
                    rep_changed,
                    updated_profiles,
                })
            }
            None => {
                let gid = GroupId(self.next_group);
                self.next_group += 1;
                let result_stream =
                    StreamName::from(format!("{}::g{}", self.stream_prefix, gid.raw()));
                let profile = retighten_profile(&q, &q, &result_stream)?;
                let group = QueryGroup {
                    id: gid,
                    result_stream: result_stream.clone(),
                    members: vec![(qid, q.clone())],
                    representative: q,
                };
                self.groups.insert(gid, group);
                self.index.entry(key).or_default().push(gid);
                self.placements.insert(qid, (gid, profile.clone()));
                Ok(GroupingOutcome {
                    group: gid,
                    result_stream,
                    profile,
                    joined_existing: false,
                    rep_changed: false,
                    updated_profiles: Vec::new(),
                })
            }
        }
    }

    /// Remove a query; the group's representative is rebuilt from the
    /// remaining members (or the group dissolved when empty). Returns
    /// the affected group id, or `None` if the query is unknown.
    pub fn remove(&mut self, qid: QueryId) -> Option<GroupId> {
        let (gid, _) = self.placements.remove(&qid)?;
        let group = self.groups.get_mut(&gid).expect("placement implies group");
        group.members.retain(|(m, _)| *m != qid);
        if group.members.is_empty() {
            let key = compat_key(&group.representative);
            self.groups.remove(&gid);
            if let Some(v) = self.index.get_mut(&key) {
                v.retain(|g| *g != gid);
            }
            return Some(gid);
        }
        // Rebuild the representative by folding the remaining members.
        let mut rep = group.members[0].1.clone();
        for (_, m) in group.members.iter().skip(1) {
            rep = merge(&rep, m).expect("previously merged members stay mergeable");
        }
        group.representative = rep;
        Some(gid)
    }

    /// The group containing a query, with its re-tightened profile.
    pub fn placement(&self, qid: QueryId) -> Option<(&QueryGroup, &Profile)> {
        let (gid, profile) = self.placements.get(&qid)?;
        Some((&self.groups[gid], profile))
    }

    /// A group by id.
    pub fn group(&self, gid: GroupId) -> Option<&QueryGroup> {
        self.groups.get(&gid)
    }

    /// Iterate over all groups.
    pub fn groups(&self) -> impl Iterator<Item = &QueryGroup> {
        self.groups.values()
    }

    /// Number of groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of inserted queries.
    pub fn query_count(&self) -> usize {
        self.placements.len()
    }

    /// The paper's grouping ratio: `#groups / #queries` (1.0 when empty).
    pub fn grouping_ratio(&self) -> f64 {
        if self.placements.is_empty() {
            1.0
        } else {
            self.groups.len() as f64 / self.placements.len() as f64
        }
    }

    /// Total estimated delivery rate without merging: `Σ C(qᵢ)`.
    pub fn total_member_bps(&self, catalog: &StatsCatalog) -> f64 {
        self.groups
            .values()
            .flat_map(|g| g.members.iter())
            .map(|(_, q)| cost_bps(q, catalog))
            .sum()
    }

    /// Total estimated delivery rate with merging: `Σ C(rep_g)`.
    pub fn total_rep_bps(&self, catalog: &StatsCatalog) -> f64 {
        self.groups
            .values()
            .map(|g| cost_bps(&g.representative, catalog))
            .sum()
    }

    /// Rate-based benefit ratio `1 − Σ C(rep) / Σ C(q)` — the
    /// topology-independent part of the paper's Figure 4(a) metric.
    pub fn rate_benefit_ratio(&self, catalog: &StatsCatalog) -> f64 {
        let members = self.total_member_bps(catalog);
        if members <= 0.0 {
            0.0
        } else {
            1.0 - self.total_rep_bps(catalog) / members
        }
    }

    /// Self-tuning re-optimization (the "Self-tuning" in COSMOS's name):
    /// greedy insertion is order-sensitive, so periodically re-run the
    /// assignment with all queries known, inserting in descending `C(q)`
    /// order (large flows anchor groups; small ones then join the best
    /// anchor). The new grouping is adopted only if it strictly lowers
    /// `Σ C(rep)`; returns the refreshed placements
    /// `(query, result stream, profile)` when it does.
    pub fn reoptimize(
        &mut self,
        catalog: &StatsCatalog,
    ) -> Result<Option<Vec<(QueryId, StreamName, Profile)>>> {
        if self.placements.len() < 2 {
            return Ok(None);
        }
        let mut queries: Vec<(QueryId, AnalyzedQuery)> = self
            .groups
            .values()
            .flat_map(|g| g.members.iter().cloned())
            .collect();
        queries.sort_by(|(ia, qa), (ib, qb)| {
            cost_bps(qb, catalog)
                .partial_cmp(&cost_bps(qa, catalog))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(ia.cmp(ib))
        });
        let mut candidate = GroupManager::new(self.stream_prefix.clone());
        candidate.next_group = self.next_group;
        for (qid, q) in queries {
            candidate.insert(qid, q, catalog)?;
        }
        let (old, new) = (
            self.total_rep_bps(catalog),
            candidate.total_rep_bps(catalog),
        );
        if new + GAIN_EPSILON >= old {
            return Ok(None);
        }
        let placements: Vec<(QueryId, StreamName, Profile)> = candidate
            .placements
            .iter()
            .map(|(qid, (gid, profile))| {
                (
                    *qid,
                    candidate.groups[gid].result_stream.clone(),
                    profile.clone(),
                )
            })
            .collect();
        *self = candidate;
        Ok(Some(placements))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimate::{AttrStats, StreamStats};
    use cosmos_cql::parse_query;
    use cosmos_types::{AttrType, Schema};

    fn catalog() -> StatsCatalog {
        let mut c = StatsCatalog::new();
        for name in ["S", "T"] {
            c.register(
                name,
                Schema::of(&[
                    ("id", AttrType::Int),
                    ("x", AttrType::Float),
                    ("timestamp", AttrType::Int),
                ]),
                StreamStats::with_rate(10.0)
                    .attr("id", AttrStats::categorical(50.0))
                    .attr("x", AttrStats::numeric(0.0, 100.0, 1000.0)),
            );
        }
        c
    }

    fn q(cat: &StatsCatalog, text: &str) -> AnalyzedQuery {
        AnalyzedQuery::analyze(&parse_query(text).unwrap(), cat.schema_fn()).unwrap()
    }

    #[test]
    fn identical_queries_share_a_group() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        let text = "SELECT id, x FROM S [Now] WHERE x < 50.0";
        let o1 = gm.insert(QueryId(1), q(&cat, text), &cat).unwrap();
        let o2 = gm.insert(QueryId(2), q(&cat, text), &cat).unwrap();
        assert!(!o1.joined_existing);
        assert!(o2.joined_existing);
        assert_eq!(o1.group, o2.group);
        assert!(!o2.rep_changed); // identical query cannot change the rep
        assert_eq!(gm.group_count(), 1);
        assert_eq!(gm.query_count(), 2);
        assert!((gm.grouping_ratio() - 0.5).abs() < 1e-12);
        // benefit: one member's cost is saved entirely
        let g = gm.group(o1.group).unwrap();
        assert!(g.benefit(&cat) > 0.0);
        assert!(gm.rate_benefit_ratio(&cat) > 0.4);
    }

    #[test]
    fn overlapping_queries_merge_with_loosened_rep() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        let o1 = gm
            .insert(
                QueryId(1),
                q(
                    &cat,
                    "SELECT id, x FROM S [Now] WHERE x BETWEEN 0.0 AND 60.0",
                ),
                &cat,
            )
            .unwrap();
        let o2 = gm
            .insert(
                QueryId(2),
                q(
                    &cat,
                    "SELECT id, x FROM S [Now] WHERE x BETWEEN 40.0 AND 100.0",
                ),
                &cat,
            )
            .unwrap();
        assert_eq!(o1.group, o2.group);
        assert!(o2.rep_changed);
        let g = gm.group(o1.group).unwrap();
        let c = g.representative.selections[0].constraint_for("x");
        assert!(c.satisfies(&cosmos_types::Value::Float(0.0)));
        assert!(c.satisfies(&cosmos_types::Value::Float(100.0)));
    }

    #[test]
    fn disjoint_narrow_queries_stay_apart() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        let o1 = gm
            .insert(
                QueryId(1),
                q(&cat, "SELECT id FROM S [Now] WHERE x BETWEEN 0.0 AND 5.0"),
                &cat,
            )
            .unwrap();
        let o2 = gm
            .insert(
                QueryId(2),
                q(&cat, "SELECT id FROM S [Now] WHERE x BETWEEN 90.0 AND 95.0"),
                &cat,
            )
            .unwrap();
        assert_ne!(o1.group, o2.group, "hull over the gap should not pay off");
        assert_eq!(gm.group_count(), 2);
    }

    #[test]
    fn different_streams_never_share_groups() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        let o1 = gm
            .insert(QueryId(1), q(&cat, "SELECT id FROM S [Now]"), &cat)
            .unwrap();
        let o2 = gm
            .insert(QueryId(2), q(&cat, "SELECT id FROM T [Now]"), &cat)
            .unwrap();
        assert_ne!(o1.group, o2.group);
        assert_ne!(o1.result_stream, o2.result_stream);
    }

    #[test]
    fn picks_maximum_gain_group() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        // group A: wide range; group B: narrow disjoint range
        let oa = gm
            .insert(
                QueryId(1),
                q(
                    &cat,
                    "SELECT id, x FROM S [Now] WHERE x BETWEEN 0.0 AND 50.0",
                ),
                &cat,
            )
            .unwrap();
        let _ob = gm
            .insert(
                QueryId(2),
                q(
                    &cat,
                    "SELECT id, x FROM S [Now] WHERE x BETWEEN 98.0 AND 100.0",
                ),
                &cat,
            )
            .unwrap();
        // a query inside A's range must join A, not B
        let oc = gm
            .insert(
                QueryId(3),
                q(
                    &cat,
                    "SELECT id, x FROM S [Now] WHERE x BETWEEN 10.0 AND 20.0",
                ),
                &cat,
            )
            .unwrap();
        assert_eq!(oc.group, oa.group);
    }

    #[test]
    fn placement_returns_profile() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        let o = gm
            .insert(
                QueryId(7),
                q(&cat, "SELECT id FROM S [Now] WHERE x < 10.0"),
                &cat,
            )
            .unwrap();
        let (g, p) = gm.placement(QueryId(7)).unwrap();
        assert_eq!(g.id, o.group);
        assert_eq!(p, &o.profile);
        assert!(gm.placement(QueryId(99)).is_none());
        // the profile targets the group's result stream
        assert!(p.entry(&o.result_stream).is_some());
    }

    #[test]
    fn duplicate_insert_rejected() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        gm.insert(QueryId(1), q(&cat, "SELECT id FROM S [Now]"), &cat)
            .unwrap();
        assert!(gm
            .insert(QueryId(1), q(&cat, "SELECT id FROM S [Now]"), &cat)
            .is_err());
    }

    #[test]
    fn remove_rebuilds_or_dissolves_groups() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        let wide = "SELECT id, x FROM S [Now] WHERE x BETWEEN 0.0 AND 80.0";
        let narrow = "SELECT id, x FROM S [Now] WHERE x BETWEEN 0.0 AND 40.0";
        let o1 = gm.insert(QueryId(1), q(&cat, wide), &cat).unwrap();
        let o2 = gm.insert(QueryId(2), q(&cat, narrow), &cat).unwrap();
        assert_eq!(o1.group, o2.group);
        // removing the wide member shrinks the representative
        gm.remove(QueryId(1)).unwrap();
        let g = gm.group(o2.group).unwrap();
        let c = g.representative.selections[0].constraint_for("x");
        assert!(!c.satisfies(&cosmos_types::Value::Float(60.0)));
        // removing the last member dissolves the group
        gm.remove(QueryId(2)).unwrap();
        assert_eq!(gm.group_count(), 0);
        assert!(gm.remove(QueryId(2)).is_none());
        // and its index slot no longer offers the dead group
        let o3 = gm.insert(QueryId(3), q(&cat, wide), &cat).unwrap();
        assert!(!o3.joined_existing);
    }

    #[test]
    fn distinct_queries_form_singleton_groups() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        let text = "SELECT DISTINCT id FROM S [Now]";
        let o1 = gm.insert(QueryId(1), q(&cat, text), &cat).unwrap();
        let o2 = gm.insert(QueryId(2), q(&cat, text), &cat).unwrap();
        assert_ne!(o1.group, o2.group);
    }

    #[test]
    fn reoptimize_recovers_from_adversarial_insert_order() {
        // Two disjoint narrow queries arrive first and seed separate
        // groups; a wide query then joins one of them, leaving the other
        // stranded. With full knowledge, the wide query anchors a single
        // group that absorbs both narrow ones.
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        let narrow_a = "SELECT id, x FROM S [Now] WHERE x BETWEEN 0.0 AND 10.0";
        let narrow_b = "SELECT id, x FROM S [Now] WHERE x BETWEEN 90.0 AND 100.0";
        let wide = "SELECT id, x FROM S [Now] WHERE x BETWEEN 0.0 AND 100.0";
        gm.insert(QueryId(1), q(&cat, narrow_a), &cat).unwrap();
        gm.insert(QueryId(2), q(&cat, narrow_b), &cat).unwrap();
        gm.insert(QueryId(3), q(&cat, wide), &cat).unwrap();
        assert_eq!(gm.group_count(), 2, "greedy leaves one narrow stranded");
        let before = gm.total_rep_bps(&cat);
        let placements = gm.reoptimize(&cat).unwrap().expect("must improve");
        assert_eq!(gm.group_count(), 1);
        assert!(gm.total_rep_bps(&cat) < before);
        assert_eq!(placements.len(), 3);
        // every query keeps a valid placement afterwards
        for qid in [QueryId(1), QueryId(2), QueryId(3)] {
            assert!(gm.placement(qid).is_some());
        }
        // a second pass finds nothing more to do
        assert!(gm.reoptimize(&cat).unwrap().is_none());
    }

    #[test]
    fn reoptimize_noop_cases() {
        let cat = catalog();
        let mut gm = GroupManager::new("rep");
        assert!(gm.reoptimize(&cat).unwrap().is_none()); // empty
        gm.insert(QueryId(1), q(&cat, "SELECT id FROM S [Now]"), &cat)
            .unwrap();
        assert!(gm.reoptimize(&cat).unwrap().is_none()); // single query
        gm.insert(QueryId(2), q(&cat, "SELECT id FROM S [Now]"), &cat)
            .unwrap();
        // already optimal (one group)
        assert!(gm.reoptimize(&cat).unwrap().is_none());
        assert_eq!(gm.group_count(), 1);
    }

    #[test]
    fn grouping_ratio_of_empty_manager() {
        let gm = GroupManager::new("rep");
        assert_eq!(gm.grouping_ratio(), 1.0);
        assert_eq!(gm.rate_benefit_ratio(&catalog()), 0.0);
        assert_eq!(gm.groups().count(), 0);
    }
}
