//! End-to-end correctness of the paper's merge-and-split pipeline.
//!
//! The entire COSMOS query layer rests on one invariant: for every
//! member `q` of a query group with representative `Q` and shared result
//! stream `s`,
//!
//! ```text
//!   split(profile_q, run(Q))  ≡  run(q)
//! ```
//!
//! where `run` is continuous execution over the *same* inputs, `split`
//! is plain CBN filtering + projection with `q`'s re-tightened profile,
//! and `≡` is multiset equality of `(timestamp, values)` pairs.
//!
//! These tests check the invariant with both hand-picked scenarios
//! (including Table 1 of the paper, executed on generated auction data)
//! and property-based random query pairs over random inputs, using the
//! SPE's brute-force oracle as the executor-independent ground truth.

use cosmos_cbn::Profile;
use cosmos_cql::parse_query;
use cosmos_query::{merge, retighten_profile};
use cosmos_spe::analyze::{AnalyzedQuery, OutputColumn};
use cosmos_spe::oracle;
use cosmos_types::{AttrType, Schema, StreamName, Timestamp, Tuple, Value};
use proptest::prelude::*;

fn catalog(name: &str) -> Option<Schema> {
    match name {
        "L" => Some(Schema::of(&[
            ("k", AttrType::Int),
            ("x", AttrType::Int),
            ("timestamp", AttrType::Int),
        ])),
        "R" => Some(Schema::of(&[
            ("k", AttrType::Int),
            ("y", AttrType::Int),
            ("timestamp", AttrType::Int),
        ])),
        "OpenAuction" => Some(Schema::of(&[
            ("itemID", AttrType::Int),
            ("sellerID", AttrType::Int),
            ("start_price", AttrType::Float),
            ("timestamp", AttrType::Int),
        ])),
        "ClosedAuction" => Some(Schema::of(&[
            ("itemID", AttrType::Int),
            ("buyerID", AttrType::Int),
            ("timestamp", AttrType::Int),
        ])),
        _ => None,
    }
}

fn analyzed(text: &str) -> AnalyzedQuery {
    AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog).unwrap()
}

/// Split a representative result stream with a member profile, returning
/// normalized `(timestamp, column→value)` rows.
fn split(
    rep_out: &[Tuple],
    rep_schema: &Schema,
    profile: &Profile,
) -> Vec<(Timestamp, Vec<(String, Value)>)> {
    let mut out = Vec::new();
    for t in rep_out {
        if !profile.covers_tuple(t, rep_schema) {
            continue;
        }
        let (pt, ps) = profile.project_tuple(t, rep_schema).expect("projectable");
        let row = ps
            .names()
            .map(str::to_string)
            .zip(pt.values().iter().cloned())
            .collect();
        out.push((pt.timestamp, row));
    }
    out.sort();
    out
}

/// Run a member directly and normalize its rows under the
/// representative's column names.
fn direct(
    member: &AnalyzedQuery,
    rep: &AnalyzedQuery,
    inputs: &[Tuple],
) -> Vec<(Timestamp, Vec<(String, Value)>)> {
    let map = cosmos_query::correspondence(member, rep).expect("same streams");
    let rename = |col: &OutputColumn| -> String {
        let rn = |qa: &cosmos_spe::analyze::QAttr| {
            let i = member.stream_index(&qa.binding).unwrap();
            let renamed = cosmos_spe::analyze::QAttr::new(&rep.streams[map[i]].binding, &qa.name);
            if rep.qualified_names() {
                renamed.qualified()
            } else {
                renamed.name
            }
        };
        match col {
            OutputColumn::Attr(qa) => rn(qa),
            OutputColumn::Agg { func, arg } => {
                format!(
                    "{func}({})",
                    arg.as_ref().map(&rn).unwrap_or_else(|| "*".into())
                )
            }
        }
    };
    let names: Vec<String> = member.output.iter().map(rename).collect();
    let mut out = Vec::new();
    for t in oracle::evaluate(member, "direct", inputs) {
        let mut row: Vec<(String, Value)> = names
            .iter()
            .cloned()
            .zip(t.values().iter().cloned())
            .collect();
        // The profile projection yields columns in rep-schema order and
        // deduplicates; normalize the direct rows the same way.
        row.sort();
        row.dedup_by(|a, b| a.0 == b.0);
        out.push((t.timestamp, row));
    }
    out.sort();
    out
}

/// Assert the invariant for a pair of queries over the given inputs.
fn check_pair(q1: &AnalyzedQuery, q2: &AnalyzedQuery, inputs: &[Tuple]) {
    let rep = match merge(q1, q2) {
        Ok(r) => r,
        Err(_) => return, // not mergeable — nothing to check
    };
    let stream = StreamName::from("shared");
    let rep_out = oracle::evaluate(&rep, stream.as_str(), inputs);
    for member in [q1, q2] {
        let profile = retighten_profile(member, &rep, &stream).unwrap();
        let got = split(&rep_out, &rep.output_schema, &profile);
        // Normalize the split rows too (sorted columns, deduped).
        let mut got: Vec<_> = got
            .into_iter()
            .map(|(ts, mut row)| {
                row.sort();
                row.dedup_by(|a, b| a.0 == b.0);
                (ts, row)
            })
            .collect();
        got.sort();
        let want = direct(member, &rep, inputs);
        assert_eq!(
            want, got,
            "split of representative diverged from direct execution\n\
             member: {member:#?}"
        );
    }
}

fn l(ts: i64, k: i64, x: i64) -> Tuple {
    Tuple::new(
        "L",
        Timestamp(ts),
        vec![Value::Int(k), Value::Int(x), Value::Int(ts)],
    )
}

fn r(ts: i64, k: i64, y: i64) -> Tuple {
    Tuple::new(
        "R",
        Timestamp(ts),
        vec![Value::Int(k), Value::Int(y), Value::Int(ts)],
    )
}

#[test]
fn table1_scenario_on_auction_data() {
    let q1 = analyzed(
        "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C \
         WHERE O.itemID = C.itemID",
    );
    let q2 = analyzed(
        "SELECT O.itemID, O.timestamp, C.buyerID, C.timestamp \
         FROM OpenAuction [Range 5 Hour] O, ClosedAuction [Now] C \
         WHERE O.itemID = C.itemID",
    );
    // Openings at hours 0..6, each closing 0..6 hours later.
    let h = 3_600_000i64;
    let mut inputs = Vec::new();
    for item in 0..12i64 {
        let open_ts = (item % 6) * h;
        let close_ts = open_ts + (item % 7) * h;
        inputs.push(Tuple::new(
            "OpenAuction",
            Timestamp(open_ts),
            vec![
                Value::Int(item),
                Value::Int(100 + item),
                Value::Float(10.0 + item as f64),
                Value::Int(open_ts),
            ],
        ));
        inputs.push(Tuple::new(
            "ClosedAuction",
            Timestamp(close_ts),
            vec![
                Value::Int(item),
                Value::Int(200 + item),
                Value::Int(close_ts),
            ],
        ));
    }
    inputs.sort_by_key(|t| t.timestamp);
    check_pair(&q1, &q2, &inputs);

    // sanity: q1 (3h) must deliver a strict subset of rep rows here
    let rep = merge(&q1, &q2).unwrap();
    let stream = StreamName::from("shared");
    let rep_out = oracle::evaluate(&rep, stream.as_str(), &inputs);
    let p1 = retighten_profile(&q1, &rep, &stream).unwrap();
    let got1 = split(&rep_out, &rep.output_schema, &p1);
    assert!(!rep_out.is_empty());
    assert!(
        got1.len() < rep_out.len(),
        "3h member must filter something"
    );
}

#[test]
fn selection_split_hand_case() {
    let cold = analyzed("SELECT k, x FROM L [Now] WHERE x <= 10");
    let hot = analyzed("SELECT k, x FROM L [Now] WHERE x >= 30");
    let inputs: Vec<Tuple> = (0..40).map(|i| l(i * 1000, i % 3, i)).collect();
    check_pair(&cold, &hot, &inputs);
}

#[test]
fn aggregate_split_hand_case() {
    let g3 = analyzed("SELECT k, COUNT(*), SUM(x) FROM L [Range 5 Second] WHERE k = 0 GROUP BY k");
    let g1 = analyzed("SELECT k, COUNT(*), AVG(x) FROM L [Range 5 Second] WHERE k = 1 GROUP BY k");
    let inputs: Vec<Tuple> = (0..60).map(|i| l(i * 700, i % 3, i * 2)).collect();
    check_pair(&g3, &g1, &inputs);
}

#[test]
fn singleton_profile_is_identity() {
    let q = analyzed("SELECT k, x FROM L [Now] WHERE x > 5");
    let stream = StreamName::from("solo");
    let profile = retighten_profile(&q, &q, &stream).unwrap();
    let inputs: Vec<Tuple> = (0..20).map(|i| l(i * 1000, i, i)).collect();
    let out = oracle::evaluate(&q, stream.as_str(), &inputs);
    let kept = split(&out, &q.output_schema, &profile);
    assert_eq!(
        kept.len(),
        out.len(),
        "identity profile must keep everything"
    );
}

/// Strategy for a window size in milliseconds.
fn arb_window() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("[Now]"),
        Just("[Range 3 Second]"),
        Just("[Range 8 Second]"),
        Just("[Range 20 Second]"),
        Just("[Unbounded]"),
    ]
}

fn arb_range() -> impl Strategy<Value = (i64, i64)> {
    (0i64..40, 0i64..40).prop_map(|(a, b)| (a.min(b), a.max(b)))
}

fn arb_single_query() -> impl Strategy<Value = String> {
    (
        arb_window(),
        proptest::option::of(arb_range()),
        proptest::option::of(0i64..4),
        proptest::sample::subsequence(vec!["k", "x", "timestamp"], 1..=3),
    )
        .prop_map(|(w, xr, keq, cols)| {
            let mut preds = Vec::new();
            if let Some((lo, hi)) = xr {
                preds.push(format!("x BETWEEN {lo} AND {hi}"));
            }
            if let Some(k) = keq {
                preds.push(format!("k = {k}"));
            }
            let where_ = if preds.is_empty() {
                String::new()
            } else {
                format!(" WHERE {}", preds.join(" AND "))
            };
            format!("SELECT {} FROM L {w}{where_}", cols.join(", "))
        })
}

fn arb_join_query() -> impl Strategy<Value = String> {
    (
        arb_window(),
        arb_window(),
        proptest::option::of(arb_range()),
        proptest::option::of(arb_range()),
    )
        .prop_map(|(w1, w2, xr, yr)| {
            let mut preds = vec!["A.k = B.k".to_string()];
            if let Some((lo, hi)) = xr {
                preds.push(format!("A.x BETWEEN {lo} AND {hi}"));
            }
            if let Some((lo, hi)) = yr {
                preds.push(format!("B.y BETWEEN {lo} AND {hi}"));
            }
            format!(
                "SELECT A.k, A.x, B.y FROM L {w1} A, R {w2} B WHERE {}",
                preds.join(" AND ")
            )
        })
}

fn arb_agg_query() -> impl Strategy<Value = String> {
    (
        prop_oneof![Just("[Range 5 Second]"), Just("[Range 15 Second]")],
        proptest::option::of(arb_range()),
        proptest::sample::select(vec!["COUNT(*)", "SUM(x)", "MIN(x)", "MAX(x)", "AVG(x)"]),
    )
        .prop_map(|(w, kr, agg)| {
            let where_ = match kr {
                Some((lo, hi)) => format!(" WHERE k BETWEEN {lo} AND {hi}"),
                None => String::new(),
            };
            format!("SELECT k, {agg} FROM L {w}{where_} GROUP BY k")
        })
}

fn arb_inputs() -> impl Strategy<Value = Vec<Tuple>> {
    proptest::collection::vec((0i64..25, any::<bool>(), 0i64..4, 0i64..40), 10..60).prop_map(
        |mut raw| {
            raw.sort_by_key(|(ts, _, _, _)| *ts);
            raw.into_iter()
                .map(|(ts, is_l, k, v)| {
                    if is_l {
                        l(ts * 1000, k, v)
                    } else {
                        r(ts * 1000, k, v)
                    }
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random single-stream query pairs split correctly.
    #[test]
    fn single_stream_pairs(
        a in arb_single_query(),
        b in arb_single_query(),
        inputs in arb_inputs(),
    ) {
        check_pair(&analyzed(&a), &analyzed(&b), &inputs);
    }

    /// Random window-join query pairs split correctly — this exercises
    /// the Lemma 1 window re-tightening filters.
    #[test]
    fn join_pairs(
        a in arb_join_query(),
        b in arb_join_query(),
        inputs in arb_inputs(),
    ) {
        check_pair(&analyzed(&a), &analyzed(&b), &inputs);
    }

    /// Random aggregate query pairs (group-attribute filters) split
    /// correctly.
    #[test]
    fn aggregate_pairs(
        a in arb_agg_query(),
        b in arb_agg_query(),
        inputs in arb_inputs(),
    ) {
        check_pair(&analyzed(&a), &analyzed(&b), &inputs);
    }

    /// Merging with itself is always allowed for plain queries, and the
    /// resulting profile is the identity on the member's own results.
    #[test]
    fn self_merge_identity(a in arb_single_query(), inputs in arb_inputs()) {
        let q = analyzed(&a);
        check_pair(&q, &q, &inputs);
    }
}
