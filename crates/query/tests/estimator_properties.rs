//! Properties of the `C(q)` estimator the grouping algorithm relies on:
//! selectivities stay in `[0, 1]`, conjunction is monotone (adding a
//! constraint never increases selectivity), and rates respond
//! monotonically to windows and predicates.

use cosmos_cbn::{AttrConstraint, Conjunction, Interval};
use cosmos_cql::parse_query;
use cosmos_query::estimate::{
    conjunction_selectivity, constraint_selectivity, cost_bps, output_tuples_per_sec,
};
use cosmos_query::{AttrStats, StatsCatalog, StreamStats};
use cosmos_spe::AnalyzedQuery;
use cosmos_types::{AttrType, Schema, Value};
use proptest::prelude::*;

fn catalog() -> StatsCatalog {
    let mut c = StatsCatalog::new();
    c.register(
        "S",
        Schema::of(&[
            ("id", AttrType::Int),
            ("x", AttrType::Float),
            ("timestamp", AttrType::Int),
        ]),
        StreamStats::with_rate(5.0)
            .attr("id", AttrStats::categorical(64.0))
            .attr("x", AttrStats::numeric(0.0, 100.0, 500.0)),
    );
    c.register(
        "T",
        Schema::of(&[("id", AttrType::Int), ("timestamp", AttrType::Int)]),
        StreamStats::with_rate(3.0).attr("id", AttrStats::categorical(64.0)),
    );
    c
}

fn q(text: &str) -> AnalyzedQuery {
    AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog().schema_fn()).unwrap()
}

fn arb_constraint() -> impl Strategy<Value = AttrConstraint> {
    (
        proptest::option::of((-20i64..120, any::<bool>())),
        proptest::option::of((-20i64..120, any::<bool>())),
        proptest::collection::btree_set((-20i64..120).prop_map(Value::Int), 0..3),
    )
        .prop_map(|(lo, hi, excluded)| AttrConstraint {
            interval: Interval {
                lo: lo.map(|(v, i)| (Value::Int(v), i)),
                hi: hi.map(|(v, i)| (Value::Int(v), i)),
            },
            excluded,
        })
}

proptest! {
    /// Single-constraint selectivity is always a probability.
    #[test]
    fn constraint_selectivity_in_unit_interval(c in arb_constraint()) {
        let st = AttrStats::numeric(0.0, 100.0, 500.0);
        let s = constraint_selectivity(&c, Some(&st));
        prop_assert!((0.0..=1.0).contains(&s), "sel {s}");
        let s_none = constraint_selectivity(&c, None);
        prop_assert!((0.0..=1.0).contains(&s_none));
    }

    /// Adding a conjunct never increases selectivity.
    #[test]
    fn conjunction_is_monotone(
        lo1 in 0i64..100, w1 in 1i64..100,
        lo2 in 0i64..100, w2 in 1i64..100,
    ) {
        let cat = catalog();
        let stats = cat.stats(&"S".into());
        let mut one = Conjunction::always();
        one.between("x", lo1, lo1 + w1);
        let mut two = one.clone();
        two.between("id", lo2 % 64, (lo2 % 64) + (w2 % 64));
        let s1 = conjunction_selectivity(&one, stats);
        let s2 = conjunction_selectivity(&two, stats);
        prop_assert!(s2 <= s1 + 1e-12, "{s2} > {s1}");
    }

    /// Narrowing a range never increases the estimated output rate.
    #[test]
    fn narrower_ranges_cost_less(lo in 0i64..50, wide in 20i64..50, shrink in 1i64..19) {
        let cat = catalog();
        let wide_q = q(&format!("SELECT id, x FROM S [Now] WHERE x BETWEEN {lo} AND {}", lo + wide));
        let narrow_q = q(&format!(
            "SELECT id, x FROM S [Now] WHERE x BETWEEN {lo} AND {}",
            lo + wide - shrink
        ));
        prop_assert!(cost_bps(&narrow_q, &cat) <= cost_bps(&wide_q, &cat) + 1e-9);
    }

    /// Brute-force audit: on a uniform integer grid `{0, …, gmax}` with
    /// `distinct = gmax + 1`, the model's selectivity for a closed
    /// interval with excluded points must agree with the exact count
    /// `#matching grid values / #grid values` to within the
    /// discretization gap `1/(gmax+1)` (continuous width ratio vs
    /// discrete count — the model's only remaining approximation).
    #[test]
    fn closed_intervals_agree_with_brute_force_grid(
        gmax in 10i64..80,
        lo in -20i64..120,
        len in 0i64..60,
        excl in proptest::collection::btree_set(-20i64..120, 0..3),
    ) {
        let st = AttrStats::numeric(0.0, gmax as f64, (gmax + 1) as f64);
        let hi = lo + len;
        let mut c = AttrConstraint::from_interval(
            Interval::closed(Value::Int(lo), Value::Int(hi)),
        );
        for e in &excl {
            c.excluded.insert(Value::Int(*e));
        }
        let exact = (0..=gmax)
            .filter(|v| *v >= lo && *v <= hi && !excl.contains(v))
            .count() as f64
            / (gmax + 1) as f64;
        let model = constraint_selectivity(&c, Some(&st));
        let tol = 1.0 / (gmax + 1) as f64 + 1e-9;
        prop_assert!(
            (model - exact).abs() <= tol,
            "grid [0,{gmax}] ∩ [{lo},{hi}] \\ {excl:?}: model {model}, exact {exact}, tol {tol}"
        );
    }

    /// An excluded point outside the stats domain removes no mass.
    #[test]
    fn excluded_point_outside_domain_is_a_noop(p in 101i64..200) {
        let st = AttrStats::numeric(0.0, 100.0, 500.0);
        let base = AttrConstraint::from_interval(
            Interval::closed(Value::Int(-10), Value::Int(150)),
        );
        let mut with = base.clone();
        with.excluded.insert(Value::Int(p));
        with.excluded.insert(Value::Int(-p));
        prop_assert_eq!(
            constraint_selectivity(&with, Some(&st)),
            constraint_selectivity(&base, Some(&st))
        );
        // …while the same exclusion inside the domain does reduce it.
        let mut inside = base.clone();
        inside.excluded.insert(Value::Int(p % 100));
        prop_assert!(
            constraint_selectivity(&inside, Some(&st))
                < constraint_selectivity(&base, Some(&st))
        );
    }

    /// A point constraint outside a numeric domain matches nothing; a
    /// categorical domain (no range) keeps the 1/distinct estimate.
    #[test]
    fn point_outside_numeric_domain_is_zero(p in 101i64..200) {
        let numeric = AttrStats::numeric(0.0, 100.0, 500.0);
        for v in [p, -p] {
            let c = AttrConstraint::from_interval(Interval::point(Value::Int(v)));
            prop_assert_eq!(constraint_selectivity(&c, Some(&numeric)), 0.0);
        }
        let categorical = AttrStats::categorical(64.0);
        let c = AttrConstraint::from_interval(Interval::point(Value::Int(p)));
        prop_assert!((constraint_selectivity(&c, Some(&categorical)) - 1.0 / 64.0).abs() < 1e-12);
    }

    /// Wider join windows never lower the estimated join output rate.
    #[test]
    fn wider_windows_cost_more(w1 in 1i64..60, extra in 1i64..60) {
        let cat = catalog();
        let small = q(&format!(
            "SELECT A.id FROM S [Range {w1} Second] A, T [Range 10 Second] B WHERE A.id = B.id"
        ));
        let big = q(&format!(
            "SELECT A.id FROM S [Range {} Second] A, T [Range 10 Second] B WHERE A.id = B.id",
            w1 + extra
        ));
        prop_assert!(
            output_tuples_per_sec(&big, &cat) >= output_tuples_per_sec(&small, &cat) - 1e-9
        );
    }
}

#[test]
fn rates_are_finite_and_nonnegative_for_the_corpus() {
    let cat = catalog();
    for text in [
        "SELECT id FROM S [Now]",
        "SELECT id, x FROM S [Unbounded] WHERE x > 50.0",
        "SELECT A.id FROM S [Unbounded] A, T [Unbounded] B WHERE A.id = B.id",
        "SELECT id, COUNT(*) FROM S [Range 1 Hour] GROUP BY id",
        "SELECT A.id FROM S [Now] A, T [Now] B", // cross join
    ] {
        let r = output_tuples_per_sec(&q(text), &cat);
        assert!(r.is_finite() && r >= 0.0, "{text}: {r}");
        assert!(cost_bps(&q(text), &cat).is_finite());
    }
}
