//! Properties of the `C(q)` estimator the grouping algorithm relies on:
//! selectivities stay in `[0, 1]`, conjunction is monotone (adding a
//! constraint never increases selectivity), and rates respond
//! monotonically to windows and predicates.

use cosmos_cbn::{AttrConstraint, Conjunction, Interval};
use cosmos_cql::parse_query;
use cosmos_query::estimate::{
    conjunction_selectivity, constraint_selectivity, cost_bps, output_tuples_per_sec,
};
use cosmos_query::{AttrStats, StatsCatalog, StreamStats};
use cosmos_spe::AnalyzedQuery;
use cosmos_types::{AttrType, Schema, Value};
use proptest::prelude::*;

fn catalog() -> StatsCatalog {
    let mut c = StatsCatalog::new();
    c.register(
        "S",
        Schema::of(&[
            ("id", AttrType::Int),
            ("x", AttrType::Float),
            ("timestamp", AttrType::Int),
        ]),
        StreamStats::with_rate(5.0)
            .attr("id", AttrStats::categorical(64.0))
            .attr("x", AttrStats::numeric(0.0, 100.0, 500.0)),
    );
    c.register(
        "T",
        Schema::of(&[("id", AttrType::Int), ("timestamp", AttrType::Int)]),
        StreamStats::with_rate(3.0).attr("id", AttrStats::categorical(64.0)),
    );
    c
}

fn q(text: &str) -> AnalyzedQuery {
    AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog().schema_fn()).unwrap()
}

fn arb_constraint() -> impl Strategy<Value = AttrConstraint> {
    (
        proptest::option::of((-20i64..120, any::<bool>())),
        proptest::option::of((-20i64..120, any::<bool>())),
        proptest::collection::btree_set((-20i64..120).prop_map(Value::Int), 0..3),
    )
        .prop_map(|(lo, hi, excluded)| AttrConstraint {
            interval: Interval {
                lo: lo.map(|(v, i)| (Value::Int(v), i)),
                hi: hi.map(|(v, i)| (Value::Int(v), i)),
            },
            excluded,
        })
}

proptest! {
    /// Single-constraint selectivity is always a probability.
    #[test]
    fn constraint_selectivity_in_unit_interval(c in arb_constraint()) {
        let st = AttrStats::numeric(0.0, 100.0, 500.0);
        let s = constraint_selectivity(&c, Some(&st));
        prop_assert!((0.0..=1.0).contains(&s), "sel {s}");
        let s_none = constraint_selectivity(&c, None);
        prop_assert!((0.0..=1.0).contains(&s_none));
    }

    /// Adding a conjunct never increases selectivity.
    #[test]
    fn conjunction_is_monotone(
        lo1 in 0i64..100, w1 in 1i64..100,
        lo2 in 0i64..100, w2 in 1i64..100,
    ) {
        let cat = catalog();
        let stats = cat.stats(&"S".into());
        let mut one = Conjunction::always();
        one.between("x", lo1, lo1 + w1);
        let mut two = one.clone();
        two.between("id", lo2 % 64, (lo2 % 64) + (w2 % 64));
        let s1 = conjunction_selectivity(&one, stats);
        let s2 = conjunction_selectivity(&two, stats);
        prop_assert!(s2 <= s1 + 1e-12, "{s2} > {s1}");
    }

    /// Narrowing a range never increases the estimated output rate.
    #[test]
    fn narrower_ranges_cost_less(lo in 0i64..50, wide in 20i64..50, shrink in 1i64..19) {
        let cat = catalog();
        let wide_q = q(&format!("SELECT id, x FROM S [Now] WHERE x BETWEEN {lo} AND {}", lo + wide));
        let narrow_q = q(&format!(
            "SELECT id, x FROM S [Now] WHERE x BETWEEN {lo} AND {}",
            lo + wide - shrink
        ));
        prop_assert!(cost_bps(&narrow_q, &cat) <= cost_bps(&wide_q, &cat) + 1e-9);
    }

    /// Wider join windows never lower the estimated join output rate.
    #[test]
    fn wider_windows_cost_more(w1 in 1i64..60, extra in 1i64..60) {
        let cat = catalog();
        let small = q(&format!(
            "SELECT A.id FROM S [Range {w1} Second] A, T [Range 10 Second] B WHERE A.id = B.id"
        ));
        let big = q(&format!(
            "SELECT A.id FROM S [Range {} Second] A, T [Range 10 Second] B WHERE A.id = B.id",
            w1 + extra
        ));
        prop_assert!(
            output_tuples_per_sec(&big, &cat) >= output_tuples_per_sec(&small, &cat) - 1e-9
        );
    }
}

#[test]
fn rates_are_finite_and_nonnegative_for_the_corpus() {
    let cat = catalog();
    for text in [
        "SELECT id FROM S [Now]",
        "SELECT id, x FROM S [Unbounded] WHERE x > 50.0",
        "SELECT A.id FROM S [Unbounded] A, T [Unbounded] B WHERE A.id = B.id",
        "SELECT id, COUNT(*) FROM S [Range 1 Hour] GROUP BY id",
        "SELECT A.id FROM S [Now] A, T [Now] B", // cross join
    ] {
        let r = output_tuples_per_sec(&q(text), &cat);
        assert!(r.is_finite() && r >= 0.0, "{text}: {r}");
        assert!(cost_bps(&q(text), &cat).is_finite());
    }
}
