#![forbid(unsafe_code)]
//! Shared helpers for the COSMOS experiment harnesses.
//!
//! Each `cargo bench` target in this crate regenerates one table or
//! figure of the paper (or one ablation from DESIGN.md) and prints the
//! same rows/series the paper reports. Results are also appended as JSON
//! lines under `target/cosmos-results/` for EXPERIMENTS.md provenance.
//!
//! Scale control: the paper's Figure 4 runs 1000 overlay nodes ×
//! 10 000 queries × 20 repetitions. That is the default for
//! `COSMOS_SCALE=full`; the default `COSMOS_SCALE=quick` shrinks the
//! sweep (300 nodes, up to 3000 queries, 5 repetitions) so the whole
//! bench suite completes in minutes while preserving every qualitative
//! shape. Set the environment variable to switch.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Experiment scale selected via `COSMOS_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale parameters (Figure 4: 1000 nodes, 10k queries, 20 reps).
    Full,
    /// Reduced parameters for fast regeneration.
    Quick,
}

/// Read the scale from the environment (default: quick).
pub fn scale() -> Scale {
    match std::env::var("COSMOS_SCALE").as_deref() {
        Ok("full") | Ok("FULL") => Scale::Full,
        _ => Scale::Quick,
    }
}

/// Print a fixed-width table with a title, headers and rows.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Directory where experiment results are persisted as JSON lines.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/cosmos-results");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Append one JSON record to `<experiment>.jsonl`.
pub fn record_json(experiment: &str, value: &serde_json::Value) {
    let path = results_dir().join(format!("{experiment}.jsonl"));
    if let Ok(mut f) = fs::OpenOptions::new().create(true).append(true).open(path) {
        let _ = writeln!(f, "{value}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_quick() {
        // (environment-dependent; only check it parses to something)
        let s = scale();
        assert!(s == Scale::Quick || s == Scale::Full);
    }

    #[test]
    fn results_dir_exists() {
        assert!(results_dir().exists());
    }

    #[test]
    fn print_table_handles_ragged_rows() {
        print_table(
            "t",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
