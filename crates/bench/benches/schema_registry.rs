//! Ablation A8: schema-registry modes — flooding vs DHT.
//!
//! Section 3: "if the number of streams is small, the schema information
//! of the streams will be flooded to every node upon its arrival.
//! Otherwise, we use a DHT architecture to store the schema information
//! while using the unique stream name as the hashing key." This harness
//! quantifies that crossover: control messages for registration plus a
//! lookup workload, as the number of streams grows, on a 1000-node
//! system.

use cosmos_bench::{print_table, record_json};
use cosmos_cbn::{RegistryMode, SchemaRegistry};
use cosmos_types::{AttrType, NodeId, Schema, StreamName};

fn run(mode: RegistryMode, nodes: u32, streams: usize, lookups_per_stream: usize) -> u64 {
    let mut reg = SchemaRegistry::new(mode, (0..nodes).map(NodeId));
    let schema = Schema::of(&[("v", AttrType::Float), ("timestamp", AttrType::Int)]);
    for i in 0..streams {
        reg.register(
            format!("s{i}"),
            schema.clone(),
            NodeId((i % nodes as usize) as u32),
        )
        .unwrap();
    }
    for i in 0..streams {
        let name = StreamName::from(format!("s{i}").as_str());
        for _ in 0..lookups_per_stream {
            reg.lookup(&name);
        }
    }
    reg.control_messages()
}

fn main() {
    let nodes = 1000;
    let mut rows = Vec::new();
    // Two usage regimes: a few consumers per stream (sparse interest,
    // the wide-area case) vs every node eventually resolving every
    // stream (hot schemas, where flooding's free local lookups win).
    for (regime, lookups) in [("sparse (3 lookups)", 3usize), ("hot (1000 lookups)", 1000)] {
        for streams in [8usize, 63, 500, 5000] {
            let flood = run(RegistryMode::Flooding, nodes, streams, lookups);
            let dht = run(RegistryMode::Dht { replicas: 3 }, nodes, streams, lookups);
            rows.push(vec![
                regime.to_string(),
                streams.to_string(),
                flood.to_string(),
                dht.to_string(),
                if dht < flood { "DHT" } else { "flooding" }.to_string(),
            ]);
            record_json(
                "schema_registry",
                &serde_json::json!({
                    "regime": regime, "streams": streams, "nodes": nodes,
                    "flooding_messages": flood, "dht_messages": dht,
                }),
            );
        }
    }
    print_table(
        &format!("Ablation A8 — schema distribution on {nodes} nodes"),
        &["regime", "#streams", "flooding msgs", "DHT msgs", "cheaper"],
        &rows,
    );
    println!(
        "\nshape check: flooding costs N msgs per stream regardless of use; \
         the DHT costs O(replicas + lookups). The paper's \"small number of \
         streams → flood, otherwise DHT\" rule corresponds to the crossover \
         when per-stream lookup traffic is below the node count."
    );
}
