//! Ablation A2: early projection on vs off.
//!
//! Section 3.1: "we extend CBN to perform projections. Early projection
//! can save the cost of transmitting unnecessary attributes." This
//! harness routes the same sensor data through the same 8-node line
//! overlay for the same query, once with the query's narrow projection
//! and once with a `SELECT *`-style profile, and reports the bytes moved.

use cosmos::{Cosmos, CosmosConfig};
use cosmos_bench::{print_table, record_json};
use cosmos_overlay::Graph;
use cosmos_types::{NodeId, StreamName};
use cosmos_workload::sensor::{sensor_catalog, stream_name, SensorGenerator};

fn line(n: u32) -> Graph {
    let mut g = Graph::new(n as usize);
    for i in 0..n {
        g.set_position(NodeId(i), i as f64 / n as f64, 0.0);
    }
    for i in 1..n {
        g.add_edge_by_distance(NodeId(i - 1), NodeId(i)).unwrap();
    }
    g
}

fn run(query: &str) -> u64 {
    let cfg = CosmosConfig {
        nodes: 8,
        processor_fraction: 0.13, // node 0 only
        ..CosmosConfig::default()
    };
    let mut sys = Cosmos::with_graph(cfg, line(8)).unwrap();
    let cat = sensor_catalog();
    let s0 = StreamName::from(stream_name(0).as_str());
    sys.register_stream(
        stream_name(0).as_str(),
        cat.schema(&s0).unwrap().clone(),
        cat.stats(&s0).unwrap().clone(),
        NodeId(0),
    )
    .unwrap();
    sys.submit_query(query, NodeId(7)).unwrap();
    let mut gen = SensorGenerator::new(0, 3);
    sys.run(gen.tuples_until(2_000_000)).unwrap();
    sys.total_bytes()
}

fn main() {
    let narrow = run(&format!(
        "SELECT node_id, ambient_temp FROM {} [Now]",
        stream_name(0)
    ));
    let wide = run(&format!("SELECT * FROM {} [Now]", stream_name(0)));
    let filtered_narrow = run(&format!(
        "SELECT node_id, ambient_temp FROM {} [Now] WHERE ambient_temp > 30.0",
        stream_name(0)
    ));
    let saved = 100.0 * (1.0 - narrow as f64 / wide as f64);
    print_table(
        "Ablation A2 — early projection (8-node line, 2000s of sensor data)",
        &["profile", "bytes moved", "vs SELECT *"],
        &[
            vec![
                "SELECT * (no projection)".into(),
                wide.to_string(),
                "—".into(),
            ],
            vec![
                "2 attributes (early projection)".into(),
                narrow.to_string(),
                format!("-{saved:.1}%"),
            ],
            vec![
                "2 attrs + selective filter".into(),
                filtered_narrow.to_string(),
                format!(
                    "-{:.1}%",
                    100.0 * (1.0 - filtered_narrow as f64 / wide as f64)
                ),
            ],
        ],
    );
    record_json(
        "early_projection",
        &serde_json::json!({
            "wide_bytes": wide, "narrow_bytes": narrow,
            "filtered_narrow_bytes": filtered_narrow,
        }),
    );
    assert!(narrow < wide, "projection must reduce bytes");
    assert!(
        filtered_narrow < narrow,
        "filtering must reduce bytes further"
    );
}
