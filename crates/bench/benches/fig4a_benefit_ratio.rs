//! Figure 4(a): benefit ratio of query merging vs. number of queries,
//! for uniform and zipf(1.0 / 1.5 / 2.0) query distributions.
//!
//! Paper setup (Section 5): 63 SensorScope streams, BRITE power-law
//! topology with 1000 nodes, minimum-spanning-tree dissemination tree,
//! 2000–10000 random queries, 20 repetitions averaged. Benefit ratio =
//! "percentage of communication cost that is reduced by the query
//! merging algorithms in comparing to that without merging".
//!
//! Expected shape (paper): the ratio grows with the number of queries
//! and with the zipf skew (zipf2 highest, uniform lowest).
//!
//! Run with `COSMOS_SCALE=full` for paper-scale parameters.

use cosmos::experiment::{run_fig4, Fig4Config};
use cosmos_bench::{print_table, record_json, scale, Scale};
use cosmos_workload::Popularity;

fn main() {
    let (nodes, checkpoints, reps) = match scale() {
        Scale::Full => (1000, vec![2000, 4000, 6000, 8000, 10000], 20),
        Scale::Quick => (300, vec![500, 1000, 1500, 2000, 2500, 3000], 5),
    };
    let pops = [
        Popularity::Uniform,
        Popularity::Zipf(1.0),
        Popularity::Zipf(1.5),
        Popularity::Zipf(2.0),
    ];
    let mut series = Vec::new();
    for pop in pops {
        let cfg = Fig4Config {
            nodes,
            checkpoints: checkpoints.clone(),
            popularity: pop,
            reps,
            ..Fig4Config::default()
        };
        let points = run_fig4(&cfg).expect("experiment runs");
        series.push((pop.label(), points));
    }
    let headers: Vec<&str> = std::iter::once("#Queries")
        .chain(series.iter().map(|(l, _)| l.as_str()))
        .collect();
    let table = |pick: fn(&cosmos::experiment::Fig4Point) -> f64| {
        checkpoints
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let mut row = vec![q.to_string()];
                for (_, pts) in &series {
                    row.push(format!("{:.3}", pick(&pts[i])));
                }
                row
            })
            .collect::<Vec<_>>()
    };
    print_table(
        &format!(
            "Figure 4(a) — Benefit Ratio, result-stream rate reduction \
             1 − ΣC(rep)/ΣC(q)  ({} nodes, {} reps, {:?} scale)",
            nodes,
            reps,
            scale()
        ),
        &headers,
        &table(|p| p.rate_benefit_ratio),
    );
    print_table(
        "Figure 4(a'), delay-weighted multicast delivery cost reduction \
         (topology-aware refinement; see EXPERIMENTS.md)",
        &headers,
        &table(|p| p.benefit_ratio),
    );
    for (label, pts) in &series {
        for p in pts {
            record_json(
                "fig4a_benefit_ratio",
                &serde_json::json!({
                    "distribution": label,
                    "queries": p.queries,
                    "rate_benefit_ratio": p.rate_benefit_ratio,
                    "topology_benefit_ratio": p.benefit_ratio,
                    "nodes": nodes,
                    "reps": reps,
                }),
            );
        }
    }
    println!(
        "\nshape check: benefit grows with #queries and with skew \
         (paper Figure 4(a))."
    );
}
