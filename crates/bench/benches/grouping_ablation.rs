//! Ablation A3: greedy grouping vs no merging vs first-fit grouping.
//!
//! DESIGN.md calls out the incremental greedy assignment ("maximum
//! benefit" group) as a design choice. This harness compares, on the
//! same query workload:
//!
//! * **no-merge** — every query its own group (the paper's baseline);
//! * **first-fit** — join the first group that merges at all, ignoring
//!   the benefit estimate;
//! * **greedy** — the paper's maximum-positive-gain assignment.
//!
//! Reported per policy: grouping ratio and rate benefit `1 − ΣC(rep)/ΣC(q)`.

use cosmos_bench::{print_table, record_json, scale, Scale};
use cosmos_cql::parse_query;
use cosmos_query::{estimate::cost_bps, merge, GroupManager, StatsCatalog};
use cosmos_spe::AnalyzedQuery;
use cosmos_types::QueryId;
use cosmos_workload::{sensor_catalog, Popularity, QueryGenConfig, QueryGenerator};

/// First-fit grouping: no benefit check at all.
struct FirstFit {
    groups: Vec<(AnalyzedQuery, Vec<AnalyzedQuery>)>,
}

impl FirstFit {
    fn insert(&mut self, q: AnalyzedQuery) {
        for (rep, members) in &mut self.groups {
            if let Ok(new_rep) = merge(rep, &q) {
                *rep = new_rep;
                members.push(q);
                return;
            }
        }
        self.groups.push((q.clone(), vec![q]));
    }

    fn metrics(&self, cat: &StatsCatalog) -> (f64, f64) {
        let queries: usize = self.groups.iter().map(|(_, m)| m.len()).sum();
        let member_bps: f64 = self
            .groups
            .iter()
            .flat_map(|(_, m)| m.iter())
            .map(|q| cost_bps(q, cat))
            .sum();
        let rep_bps: f64 = self.groups.iter().map(|(r, _)| cost_bps(r, cat)).sum();
        (
            self.groups.len() as f64 / queries as f64,
            1.0 - rep_bps / member_bps,
        )
    }
}

fn main() {
    let n_queries = match scale() {
        Scale::Full => 5000,
        Scale::Quick => 1200,
    };
    let cat = sensor_catalog();
    let mut rows = Vec::new();
    for pop in [Popularity::Uniform, Popularity::Zipf(1.5)] {
        let mut gen = QueryGenerator::new(
            QueryGenConfig {
                popularity: pop,
                ..QueryGenConfig::default()
            },
            21,
        );
        let queries: Vec<AnalyzedQuery> = gen
            .generate(n_queries)
            .iter()
            .map(|t| AnalyzedQuery::analyze(&parse_query(t).unwrap(), cat.schema_fn()).unwrap())
            .collect();

        // no-merge baseline
        let no_merge_ratio = 1.0;
        let no_merge_benefit = 0.0;

        // first-fit
        let mut ff = FirstFit { groups: Vec::new() };
        for q in &queries {
            ff.insert(q.clone());
        }
        let (ff_ratio, ff_benefit) = ff.metrics(&cat);

        // greedy (the paper's algorithm)
        let mut gm = GroupManager::new("rep");
        for (i, q) in queries.iter().enumerate() {
            gm.insert(QueryId(i as u64), q.clone(), &cat).unwrap();
        }
        let (greedy_ratio, greedy_benefit) = (gm.grouping_ratio(), gm.rate_benefit_ratio(&cat));

        // greedy + self-tuning re-optimization pass
        let _ = gm.reoptimize(&cat).unwrap();
        let (retuned_ratio, retuned_benefit) = (gm.grouping_ratio(), gm.rate_benefit_ratio(&cat));

        for (policy, ratio, benefit) in [
            ("no-merge", no_merge_ratio, no_merge_benefit),
            ("first-fit", ff_ratio, ff_benefit),
            ("greedy (paper)", greedy_ratio, greedy_benefit),
            ("greedy + retune", retuned_ratio, retuned_benefit),
        ] {
            rows.push(vec![
                pop.label(),
                policy.to_string(),
                format!("{ratio:.3}"),
                format!("{benefit:.3}"),
            ]);
            record_json(
                "grouping_ablation",
                &serde_json::json!({
                    "distribution": pop.label(), "policy": policy,
                    "grouping_ratio": ratio, "rate_benefit": benefit,
                    "queries": n_queries,
                }),
            );
        }
    }
    print_table(
        &format!("Ablation A3 — grouping policies ({n_queries} queries)"),
        &["distribution", "policy", "grouping ratio", "rate benefit"],
        &rows,
    );
    println!(
        "\nshape check: greedy must dominate first-fit on rate benefit \
         (first-fit merges unprofitable disjoint queries); the self-tuning \
         re-optimization pass can only improve on greedy."
    );
}
