//! Ablation A4: the overlay network optimizer (Section 3.2) on vs off.
//!
//! Starting from the MST dissemination tree of a power-law overlay, the
//! adaptive reorganizer (subtree reattachment under a delay + degree
//! cost, refs [18, 19]) should reduce the demand-weighted delivery cost,
//! most under skewed consumer demand.

use cosmos_bench::{print_table, record_json, scale, Scale};
use cosmos_overlay::{
    generate, minimum_spanning_tree, OptimizerConfig, TopologyKind, TreeOptimizer,
};
use cosmos_types::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let nodes = match scale() {
        Scale::Full => 1000,
        Scale::Quick => 300,
    };
    let mut rows = Vec::new();
    for (demand_label, skewed) in [("uniform demand", false), ("skewed demand", true)] {
        let mut rng = StdRng::seed_from_u64(17);
        let g = generate(TopologyKind::BarabasiAlbert { m: 2 }, nodes, &mut rng).unwrap();
        let mut tree = minimum_spanning_tree(&g, NodeId(0)).unwrap();
        let demand: Vec<f64> = (0..nodes)
            .map(|i| {
                if skewed {
                    if i % 11 == 0 {
                        rng.gen_range(5.0..10.0)
                    } else {
                        rng.gen_range(0.0..0.2)
                    }
                } else {
                    rng.gen_range(0.5..1.5)
                }
            })
            .collect();
        let opt = TreeOptimizer::new(OptimizerConfig {
            max_degree: 8,
            w_delay: 1.0,
            w_load: 0.3,
            rounds: 3,
        });
        let report = opt.optimize(&g, &mut tree, &demand);
        rows.push(vec![
            demand_label.to_string(),
            format!("{:.3}", report.cost_before),
            format!("{:.3}", report.cost_after),
            report.moves.to_string(),
            format!("{:.1}%", 100.0 * report.improvement()),
        ]);
        record_json(
            "overlay_optimizer",
            &serde_json::json!({
                "demand": demand_label, "nodes": nodes,
                "cost_before": report.cost_before, "cost_after": report.cost_after,
                "moves": report.moves,
            }),
        );
        assert!(report.cost_after <= report.cost_before);
    }
    print_table(
        &format!("Ablation A4 — overlay optimizer ({nodes}-node power-law, MST start)"),
        &[
            "demand",
            "MST cost",
            "optimized cost",
            "moves",
            "improvement",
        ],
        &rows,
    );
}
