//! Routing throughput: the ISSUE 3 perf trajectory benchmark.
//!
//! Two layers:
//!
//! * **Matcher matrix** — naive vs counting engine × single-tuple
//!   `matches` vs `matches_batch`, on one stream with a mixed
//!   equality/range subscription population.
//! * **End-to-end** — source datagrams through the full 64-node stack in
//!   four modes: `seed_single` (projection-plan caching off, per-tuple
//!   publish — the seed data path), `single` (plans + fan-out sharing,
//!   per-tuple publish), `batched` (`run_batched` over block-wise
//!   stream-homogeneous input runs, metrics recording on — the default
//!   production path), and `batched_nometrics` (same with metrics
//!   recording off, isolating the observability overhead).
//!
//! A third layer scans **core scaling**: the batched mode re-run at
//! `set_parallelism(c)` for each requested core count (`--cores LIST`,
//! default `1,2,4,8`), with speedups relative to the 1-core run. The
//! `--min-scaling X` gate fails (exit 1) when the 4-core speedup is
//! below `X` — but skips honestly, with the reason recorded in the
//! JSON, when the host exposes fewer than 4 hardware threads (a 1-CPU
//! container cannot observe parallel speedup; the pool still runs and
//! its determinism is still exercised).
//!
//! Not a criterion harness: the binary parses `--smoke` (tiny workload
//! for CI), `--json` (write machine-readable results), `--out PATH`
//! (default `BENCH_routing.json` at the repo root) so the perf
//! trajectory is recorded per commit, and `--max-metrics-overhead PCT`
//! (exit 1 if metrics-on batched throughput regresses more than PCT%
//! versus metrics-off — the CI observability-overhead gate).
//!
//! Run: `cargo bench --bench routing_throughput -- --json`

use cosmos::{Cosmos, CosmosConfig};
use cosmos_cbn::{Conjunction, CountingMatcher, MatchEngine, NaiveMatcher, Profile, Projection};
use cosmos_types::{NodeId, StreamName, Tuple};
use cosmos_workload::sensor::{sensor_catalog, stream_name, SensorGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::time::Instant;

const NODES: usize = 64;
const STREAMS: usize = 4;
const QUERIES: usize = 32;
const BLOCK: usize = 256;

struct Config {
    smoke: bool,
    json: bool,
    out: String,
    /// Fail (exit 1) if metrics-on batched throughput is more than this
    /// many percent below metrics-off.
    max_metrics_overhead: Option<f64>,
    /// Worker-pool widths to scan in the scaling layer.
    cores: Vec<usize>,
    /// Fail (exit 1) if the 4-core batched speedup over 1 core is below
    /// this factor. Skipped (recorded, not failed) on hosts with fewer
    /// than 4 hardware threads.
    min_scaling: Option<f64>,
}

fn parse_args() -> Config {
    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_routing.json");
    let mut cfg = Config {
        smoke: false,
        json: false,
        out: default_out.to_string(),
        max_metrics_overhead: None,
        cores: vec![1, 2, 4, 8],
        min_scaling: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => cfg.smoke = true,
            "--json" => cfg.json = true,
            "--out" => cfg.out = args.next().expect("--out requires a path"),
            "--max-metrics-overhead" => {
                cfg.max_metrics_overhead = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--max-metrics-overhead requires a percentage"),
                )
            }
            "--cores" => {
                cfg.cores = args
                    .next()
                    .map(|v| {
                        v.split(',')
                            .map(|c| c.trim().parse().expect("--cores requires integers"))
                            .collect()
                    })
                    .expect("--cores requires a comma-separated list")
            }
            "--min-scaling" => {
                cfg.min_scaling = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .expect("--min-scaling requires a factor"),
                )
            }
            // ignore cargo-bench plumbing (--bench, filter strings, ...)
            _ => {}
        }
    }
    cfg
}

#[derive(Debug)]
struct Measurement {
    layer: &'static str,
    name: String,
    tuples: usize,
    tuples_per_sec: f64,
}

/// Best-of-`reps` throughput of `f` over `tuples` tuples.
fn measure(reps: usize, tuples: usize, mut f: impl FnMut() -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        black_box(f());
        best = best.min(start.elapsed().as_secs_f64());
    }
    tuples as f64 / best
}

// ---------------------------------------------------------------- matcher

/// A mixed subscription population on one stream: a third key-equality
/// profiles (the eq fast path), a third range filters, a third
/// whole-stream.
fn matcher_profiles() -> Vec<Profile> {
    let mut out = Vec::new();
    for i in 0..48i64 {
        let mut p = Profile::new();
        match i % 3 {
            0 => {
                let mut f = Conjunction::always();
                f.equals("node_id", i % 16);
                p.add_interest("S", Projection::All, f);
            }
            1 => {
                let mut f = Conjunction::always();
                f.between("ambient_temp", -30.0 + i as f64, 10.0 + i as f64);
                p.add_interest("S", Projection::All, f);
            }
            _ => p = Profile::whole_stream("S"),
        }
        out.push(p);
    }
    out
}

fn matcher_inputs(n: usize) -> Vec<Tuple> {
    let mut g = SensorGenerator::new(0, 77);
    (0..n)
        .map(|_| {
            let t = g.next_tuple();
            Tuple::new("S", t.timestamp, t.values().to_vec())
        })
        .collect()
}

fn bench_matchers(smoke: bool, results: &mut Vec<Measurement>) {
    let n = if smoke { 20_000 } else { 200_000 };
    let reps = if smoke { 1 } else { 3 };
    let schema = cosmos_workload::sensor::sensor_schema();
    let inputs = matcher_inputs(n);
    let mut naive = NaiveMatcher::new();
    let mut counting = CountingMatcher::new();
    for (i, p) in matcher_profiles().into_iter().enumerate() {
        naive.insert(i as u32, p.clone());
        counting.insert(i as u32, p);
    }
    let single = |eng: &dyn MatchEngine<u32>| -> u64 {
        let mut hits = 0u64;
        for t in &inputs {
            hits += eng.matches(t, &schema).len() as u64;
        }
        hits
    };
    let batched = |eng: &dyn MatchEngine<u32>| -> u64 {
        let mut hits = 0u64;
        for chunk in inputs.chunks(BLOCK) {
            hits += eng
                .matches_batch(chunk, &schema)
                .iter()
                .map(Vec::len)
                .sum::<usize>() as u64;
        }
        hits
    };
    for (engine, eng) in [
        ("naive", &naive as &dyn MatchEngine<u32>),
        ("counting", &counting as &dyn MatchEngine<u32>),
    ] {
        for (mode, f) in [
            ("single", &single as &dyn Fn(&dyn MatchEngine<u32>) -> u64),
            ("batched", &batched),
        ] {
            let tps = measure(reps, n, || f(eng));
            results.push(Measurement {
                layer: "matcher",
                name: format!("{engine}/{mode}"),
                tuples: n,
                tuples_per_sec: tps,
            });
        }
    }
}

// ------------------------------------------------------------ end-to-end

fn deploy() -> Cosmos {
    let mut sys = Cosmos::new(CosmosConfig {
        nodes: NODES,
        seed: 5,
        processor_fraction: 0.1,
        ..CosmosConfig::default()
    })
    .unwrap();
    let cat = sensor_catalog();
    let mut rng = StdRng::seed_from_u64(6);
    for i in 0..STREAMS {
        let key = StreamName::from(stream_name(i).as_str());
        sys.register_stream(
            stream_name(i).as_str(),
            cat.schema(&key).unwrap().clone(),
            cat.stats(&key).unwrap().clone(),
            NodeId(rng.gen_range(0..NODES as u32)),
        )
        .unwrap();
    }
    for i in 0..QUERIES {
        let s = stream_name(i % STREAMS);
        let threshold = -10.0 + (i % 8) as f64 * 5.0;
        let user = NodeId(rng.gen_range(0..NODES as u32));
        sys.submit_query(
            &format!(
                "SELECT node_id, ambient_temp FROM {s} [Now] \
                 WHERE ambient_temp > {threshold:.1}"
            ),
            user,
        )
        .unwrap();
    }
    sys
}

/// Inputs in stream-homogeneous blocks of [`BLOCK`]: per-stream order is
/// timestamp order, blocks round-robin across streams. The same sequence
/// feeds every mode, so single and batched runs do identical work.
fn blocked_inputs(per_stream: usize) -> Vec<Tuple> {
    let mut gens: Vec<SensorGenerator> =
        (0..STREAMS).map(|i| SensorGenerator::new(i, 77)).collect();
    let mut per: Vec<Vec<Tuple>> = gens
        .iter_mut()
        .map(|g| (0..per_stream).map(|_| g.next_tuple()).collect())
        .collect();
    let mut out = Vec::with_capacity(per_stream * STREAMS);
    let mut offset = 0;
    while offset < per_stream {
        let take = BLOCK.min(per_stream - offset);
        for stream in &mut per {
            out.extend(stream.drain(..take));
        }
        offset += take;
    }
    out
}

fn bench_end_to_end(smoke: bool, results: &mut Vec<Measurement>) {
    let per_stream = if smoke { 10_000 } else { 50_000 };
    // Enough work and repetitions that the metrics-overhead gate is
    // stable against scheduler noise even in smoke mode.
    let reps = if smoke { 5 } else { 3 };
    let data = blocked_inputs(per_stream);
    let n = data.len();
    type Mode = fn(&mut Cosmos, &[Tuple]);
    let modes: [(&str, Mode); 4] = [
        ("seed_single", |sys, data| {
            sys.set_plan_caching(false);
            for t in data {
                sys.publish(t).unwrap();
            }
        }),
        ("single", |sys, data| {
            for t in data {
                sys.publish(t).unwrap();
            }
        }),
        ("batched", |sys, data| {
            sys.run_batched(data.iter().cloned()).unwrap();
        }),
        ("batched_nometrics", |sys, data| {
            sys.set_metrics_enabled(false);
            sys.run_batched(data.iter().cloned()).unwrap();
        }),
    ];
    for (mode, f) in modes {
        // Deployment (graph build, MST, query optimization) happens
        // outside the timed region: only the data path is measured.
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut sys = deploy();
            let start = Instant::now();
            f(&mut sys, &data);
            black_box(sys.total_bytes());
            best = best.min(start.elapsed().as_secs_f64());
        }
        results.push(Measurement {
            layer: "end_to_end",
            name: mode.to_string(),
            tuples: n,
            tuples_per_sec: n as f64 / best,
        });
    }
}

// --------------------------------------------------------------- scaling

#[derive(Debug)]
struct ScalingPoint {
    cores: usize,
    tuples_per_sec: f64,
    speedup_vs_1: f64,
}

/// The batched end-to-end mode at each requested worker-pool width.
///
/// Fresh deployment per width (untimed); `cores == 1` runs the serial
/// driver so the baseline is the same code the 1-core row of the
/// end-to-end layer measures. Speedups are relative to the first
/// 1-core point (or the first point if 1 was not requested).
fn bench_scaling(smoke: bool, cores: &[usize], data: &[Tuple]) -> Vec<ScalingPoint> {
    let reps = if smoke { 3 } else { 5 };
    let n = data.len();
    let mut raw: Vec<(usize, f64)> = Vec::new();
    for &c in cores {
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut sys = deploy();
            sys.set_parallelism(c);
            let start = Instant::now();
            sys.run_batched(data.iter().cloned()).unwrap();
            black_box(sys.total_bytes());
            best = best.min(start.elapsed().as_secs_f64());
        }
        raw.push((c, n as f64 / best));
    }
    let base = raw
        .iter()
        .find(|(c, _)| *c == 1)
        .or(raw.first())
        .map(|(_, tps)| *tps)
        .unwrap_or(f64::NAN);
    raw.into_iter()
        .map(|(cores, tuples_per_sec)| ScalingPoint {
            cores,
            tuples_per_sec,
            speedup_vs_1: tuples_per_sec / base,
        })
        .collect()
}

/// Percent throughput lost to metrics recording on the batched path.
///
/// Measured from alternating metrics-on / metrics-off reps over fresh
/// deployments (deployment untimed), comparing best-of times — the
/// alternation cancels slow machine drift that would otherwise swamp a
/// single-digit overhead.
fn measure_metrics_overhead(smoke: bool, data: &[Tuple]) -> f64 {
    let reps = if smoke { 15 } else { 7 };
    let mut best_on = f64::INFINITY;
    let mut best_off = f64::INFINITY;
    for _ in 0..reps {
        for metrics_on in [true, false] {
            let mut sys = deploy();
            sys.set_metrics_enabled(metrics_on);
            let start = Instant::now();
            sys.run_batched(data.iter().cloned()).unwrap();
            black_box(sys.total_bytes());
            let t = start.elapsed().as_secs_f64();
            if metrics_on {
                best_on = best_on.min(t);
            } else {
                best_off = best_off.min(t);
            }
        }
    }
    (best_on / best_off - 1.0) * 100.0
}

// ---------------------------------------------------------------- output

fn write_json(
    cfg: &Config,
    results: &[Measurement],
    speedup: f64,
    metrics_overhead_pct: f64,
    scaling: &[ScalingPoint],
    gate_status: &str,
) {
    let available = std::thread::available_parallelism().map_or(0, usize::from);
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"routing_throughput\",\n");
    s.push_str(&format!("  \"smoke\": {},\n", cfg.smoke));
    s.push_str(&format!("  \"speedup_batched_vs_seed\": {speedup:.3},\n"));
    s.push_str(&format!(
        "  \"metrics_overhead_pct\": {metrics_overhead_pct:.2},\n"
    ));
    s.push_str("  \"scaling\": {\n");
    s.push_str(&format!("    \"hardware_threads\": {available},\n"));
    s.push_str(&format!(
        "    \"min_scaling_gate\": {{\"required\": {}, \"status\": \"{gate_status}\"}},\n",
        cfg.min_scaling
            .map_or("null".to_string(), |v| format!("{v:.2}"))
    ));
    s.push_str("    \"results\": [\n");
    for (i, p) in scaling.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"cores\": {}, \"tuples_per_sec\": {:.1}, \"speedup_vs_1\": {:.3}}}{}\n",
            p.cores,
            p.tuples_per_sec,
            p.speedup_vs_1,
            if i + 1 < scaling.len() { "," } else { "" }
        ));
    }
    s.push_str("    ]\n  },\n");
    s.push_str("  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"layer\": \"{}\", \"name\": \"{}\", \"tuples\": {}, \
             \"tuples_per_sec\": {:.1}}}{}\n",
            m.layer,
            m.name,
            m.tuples,
            m.tuples_per_sec,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(&cfg.out, s).expect("write bench json");
    println!("wrote {}", cfg.out);
}

fn main() {
    let cfg = parse_args();
    let mut results = Vec::new();
    bench_matchers(cfg.smoke, &mut results);
    bench_end_to_end(cfg.smoke, &mut results);

    let tps = |name: &str| {
        results
            .iter()
            .find(|m| m.layer == "end_to_end" && m.name == name)
            .map(|m| m.tuples_per_sec)
            .unwrap_or(f64::NAN)
    };
    let speedup = tps("batched") / tps("seed_single");
    let per_stream = if cfg.smoke { 10_000 } else { 50_000 };
    let data = blocked_inputs(per_stream);
    let metrics_overhead_pct = measure_metrics_overhead(cfg.smoke, &data);
    let scaling = bench_scaling(cfg.smoke, &cfg.cores, &data);

    for m in &results {
        println!(
            "{:>10} {:24} {:>9} tuples  {:>12.0} tuples/s",
            m.layer, m.name, m.tuples, m.tuples_per_sec
        );
    }
    println!("batched vs seed single-tuple end-to-end: {speedup:.2}x");
    println!("metrics overhead on the batched path: {metrics_overhead_pct:.2}%");
    let available = std::thread::available_parallelism().map_or(0, usize::from);
    for p in &scaling {
        println!(
            "   scaling {:2} cores            {:>9} tuples  {:>12.0} tuples/s  ({:.2}x vs 1)",
            p.cores,
            data.len(),
            p.tuples_per_sec,
            p.speedup_vs_1
        );
    }

    // --min-scaling gate: pass/fail on the 4-core speedup, or skip
    // honestly when the host cannot exhibit one.
    let four = scaling.iter().find(|p| p.cores == 4);
    let mut gate_failed = false;
    let gate_status = match (cfg.min_scaling, four) {
        (None, _) => "not requested".to_string(),
        (Some(_), _) if available < 2 => {
            // A single hardware thread cannot exhibit parallel speedup
            // at all — every multi-worker point measures scheduling
            // overhead, not scaling. Distinct from the < 4 case so the
            // JSON records *why* nothing was provable on this host.
            let s = format!(
                "skipped: {available} hardware thread(s) — parallel scaling is \
                 unmeasurable on this host"
            );
            println!("min-scaling gate {s}");
            s
        }
        (Some(_), _) if available < 4 => {
            let s = format!("skipped: only {available} hardware threads available, need 4");
            println!("min-scaling gate {s}");
            s
        }
        (Some(_), None) => {
            let s = "skipped: 4 cores not in --cores list".to_string();
            println!("min-scaling gate {s}");
            s
        }
        (Some(min), Some(p)) if p.speedup_vs_1 >= min => {
            format!("pass: {:.2}x >= {min:.2}x at 4 cores", p.speedup_vs_1)
        }
        (Some(min), Some(p)) => {
            gate_failed = true;
            format!("fail: {:.2}x < {min:.2}x at 4 cores", p.speedup_vs_1)
        }
    };

    if cfg.json {
        write_json(
            &cfg,
            &results,
            speedup,
            metrics_overhead_pct,
            &scaling,
            &gate_status,
        );
    }
    if let Some(max) = cfg.max_metrics_overhead {
        if metrics_overhead_pct.is_nan() || metrics_overhead_pct > max {
            eprintln!(
                "FAIL: metrics overhead {metrics_overhead_pct:.2}% exceeds the {max:.2}% budget"
            );
            std::process::exit(1);
        }
    }
    if gate_failed {
        eprintln!("FAIL: min-scaling gate — {gate_status}");
        std::process::exit(1);
    }
}
