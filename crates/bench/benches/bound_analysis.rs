//! Cost of the resource-bound layer on the control path.
//!
//! `cosmos_bound::check_query` runs inside every `submit_query`, so its
//! latency is pure admission overhead; `query_bounds` is re-evaluated by
//! the testkit oracle after every event against an ever-growing publish
//! trace. This bench measures both: admission analysis over a query
//! corpus (rate envelope, closed form) and bound extraction against
//! trace envelopes of increasing length, where the two-pointer window
//! occupancy scan dominates.

use cosmos_bound::{check_query, query_bounds, Envelope};
use cosmos_cql::parse_query;
use cosmos_query::StatsCatalog;
use cosmos_spe::AnalyzedQuery;
use cosmos_workload::sensor_catalog;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

/// A corpus spanning the operator shapes the analyzer special-cases:
/// stateless selection, windowed join, grouped aggregate, DISTINCT, and
/// an unbounded join that trips the B0101 rejection path.
const CORPUS: &[&str] = &[
    "SELECT node_id, ambient_temp FROM sensors_00 [Now] WHERE ambient_temp > 30.0",
    "SELECT A.node_id, B.humidity FROM sensors_00 [Range 30 Second] A, \
     sensors_01 [Range 10 Second] B WHERE A.node_id = B.node_id",
    "SELECT node_id, COUNT(*) FROM sensors_02 [Range 5 Minute] GROUP BY node_id",
    "SELECT DISTINCT node_id FROM sensors_03 [Range 1 Minute]",
    "SELECT A.node_id FROM sensors_00 [Unbounded] A, sensors_01 [Now] B \
     WHERE A.node_id = B.node_id",
];

fn analyzed_corpus(catalog: &StatsCatalog) -> Vec<AnalyzedQuery> {
    CORPUS
        .iter()
        .map(|text| {
            AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog.schema_fn()).unwrap()
        })
        .collect()
}

/// A trace envelope with `n` jittered arrivals per stream used by the
/// corpus (mean 2 tuples/sec), mimicking what the testkit oracle
/// accumulates from the publish log.
fn trace_envelope(n: usize) -> Envelope {
    let mut rng = StdRng::seed_from_u64(42);
    let mut env = Envelope::new();
    for i in 0..4 {
        let stream = cosmos_workload::sensor::stream_name(i).into();
        let mut ts = 0i64;
        for _ in 0..n {
            ts += rng.gen_range(100i64..900);
            env.record(&stream, ts, rng.gen_range(40..80));
        }
    }
    env
}

fn bench_admission(c: &mut Criterion) {
    let catalog = sensor_catalog();
    let corpus = analyzed_corpus(&catalog);
    c.bench_function("bound/check_query corpus", |b| {
        b.iter(|| {
            let mut diags = 0usize;
            for q in &corpus {
                diags += check_query(black_box(q)).len();
            }
            black_box(diags)
        })
    });
}

fn bench_query_bounds(c: &mut Criterion) {
    let catalog = sensor_catalog();
    let corpus = analyzed_corpus(&catalog);

    let rate_env = Envelope::from_catalog(&catalog, Some(60.0));
    c.bench_function("bound/query_bounds rate-envelope corpus", |b| {
        b.iter(|| {
            for q in &corpus {
                black_box(query_bounds(black_box(q), &rate_env));
            }
        })
    });

    let mut group = c.benchmark_group("bound/query_bounds trace-envelope");
    for n in [256usize, 1024, 4096] {
        let env = trace_envelope(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                for q in &corpus {
                    black_box(query_bounds(black_box(q), &env));
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admission, bench_query_bounds);
criterion_main!(benches);
