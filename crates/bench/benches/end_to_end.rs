//! End-to-end system throughput: source datagrams published through the
//! full stack — source-side filtering, counting-matcher routing, early
//! projection, representative execution, result routing and delivery —
//! on a 64-node power-law overlay with 32 live queries.

use cosmos::{Cosmos, CosmosConfig};
use cosmos_types::{NodeId, StreamName, Tuple};
use cosmos_workload::sensor::{merged_inputs, sensor_catalog, stream_name, SensorGenerator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const NODES: usize = 64;
const STREAMS: usize = 4;
const QUERIES: usize = 32;

fn deploy() -> Cosmos {
    let mut sys = Cosmos::new(CosmosConfig {
        nodes: NODES,
        seed: 5,
        processor_fraction: 0.1,
        ..CosmosConfig::default()
    })
    .unwrap();
    let cat = sensor_catalog();
    let mut rng = StdRng::seed_from_u64(6);
    for i in 0..STREAMS {
        let key = StreamName::from(stream_name(i).as_str());
        sys.register_stream(
            stream_name(i).as_str(),
            cat.schema(&key).unwrap().clone(),
            cat.stats(&key).unwrap().clone(),
            NodeId(rng.gen_range(0..NODES as u32)),
        )
        .unwrap();
    }
    for i in 0..QUERIES {
        let s = stream_name(i % STREAMS);
        let threshold = -10.0 + (i % 8) as f64 * 5.0;
        let user = NodeId(rng.gen_range(0..NODES as u32));
        sys.submit_query(
            &format!(
                "SELECT node_id, ambient_temp FROM {s} [Now] \
                 WHERE ambient_temp > {threshold:.1}"
            ),
            user,
        )
        .unwrap();
    }
    sys
}

fn inputs() -> Vec<Tuple> {
    let mut gens: Vec<SensorGenerator> =
        (0..STREAMS).map(|i| SensorGenerator::new(i, 77)).collect();
    merged_inputs(&mut gens, 400_000)
}

fn bench_system(c: &mut Criterion) {
    let data = inputs();
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function(format!("publish/{NODES}n_{QUERIES}q"), |b| {
        b.iter(|| {
            let mut sys = deploy();
            for t in &data {
                sys.publish(black_box(t)).unwrap();
            }
            sys.total_bytes()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_system);
criterion_main!(benches);
