//! Ablation A1: counting-algorithm matcher vs naive profile scan.
//!
//! The CBN matcher runs on every datagram at every node, so its
//! throughput bounds the whole data layer. This criterion bench compares
//! [`cosmos_cbn::NaiveMatcher`] and [`cosmos_cbn::CountingMatcher`] at
//! increasing subscription counts, on an equality-heavy workload (the
//! common case: key-attribute subscriptions) and on a range-heavy one.

use cosmos_cbn::{Conjunction, CountingMatcher, MatchEngine, NaiveMatcher, Profile, Projection};
use cosmos_types::{AttrType, Schema, Timestamp, Tuple, Value};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn schema() -> Schema {
    Schema::of(&[
        ("id", AttrType::Int),
        ("price", AttrType::Float),
        ("qty", AttrType::Int),
    ])
}

fn eq_profile(rng: &mut StdRng) -> Profile {
    let mut f = Conjunction::always();
    f.equals("id", rng.gen_range(0..500i64));
    let mut p = Profile::new();
    p.add_interest("S", Projection::All, f);
    p
}

fn range_profile(rng: &mut StdRng) -> Profile {
    let mut f = Conjunction::always();
    let lo = rng.gen_range(0.0..900.0);
    f.between("price", lo, lo + rng.gen_range(10.0..100.0));
    if rng.gen_bool(0.5) {
        f.lower("qty", rng.gen_range(0..50i64), true);
    }
    let mut p = Profile::new();
    p.add_interest("S", Projection::All, f);
    p
}

fn tuples(n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            Tuple::new(
                "S",
                Timestamp(i as i64),
                vec![
                    Value::Int(rng.gen_range(0..500)),
                    Value::Float(rng.gen_range(0.0..1000.0)),
                    Value::Int(rng.gen_range(0..100)),
                ],
            )
        })
        .collect()
}

fn bench_matchers(c: &mut Criterion) {
    let s = schema();
    let probes = tuples(256, 7);
    for (flavor, make) in [
        ("equality", eq_profile as fn(&mut StdRng) -> Profile),
        ("range", range_profile as fn(&mut StdRng) -> Profile),
    ] {
        let mut group = c.benchmark_group(format!("cbn_matching/{flavor}"));
        group.sample_size(20);
        for subs in [100usize, 1000, 5000] {
            let mut rng = StdRng::seed_from_u64(42);
            let mut naive = NaiveMatcher::new();
            let mut counting = CountingMatcher::new();
            for i in 0..subs {
                let p = make(&mut rng);
                naive.insert(i as u32, p.clone());
                counting.insert(i as u32, p);
            }
            group.bench_with_input(BenchmarkId::new("naive", subs), &subs, |b, _| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for t in &probes {
                        hits += naive.matches(black_box(t), &s).len();
                    }
                    hits
                })
            });
            group.bench_with_input(BenchmarkId::new("counting", subs), &subs, |b, _| {
                b.iter(|| {
                    let mut hits = 0usize;
                    for t in &probes {
                        hits += counting.matches(black_box(t), &s).len();
                    }
                    hits
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_matchers);
criterion_main!(benches);
