//! Figure 3: result-stream delivery, "Non-Share" (a) vs "Share" (b).
//!
//! The paper's scenario: node n1 runs an SPE; users at n3 and n4 issue
//! the overlapping queries q1 and q2 (Table 1); n2 relays. Without
//! sharing, the two result streams s1 and s2 travel the n1–n2 link
//! separately, duplicating their common content; with sharing, the
//! single representative stream s3 travels it once and is split at n2.
//!
//! This is a *tuple-accurate* experiment: auction events are physically
//! routed through the CBN in both modes, every link crossing is counted
//! in bytes, and the delivered result streams are checked to be
//! identical in both modes.

use cosmos::{Cosmos, CosmosConfig};
use cosmos_bench::{print_table, record_json};
use cosmos_overlay::Graph;
use cosmos_types::NodeId;
use cosmos_workload::auction::{
    auction_catalog, closed_auction_schema, open_auction_schema, AuctionGenerator, Q1, Q2,
};

/// Figure 3 topology with a configurable trunk length: n1(0) — … —
/// n2(trunk) — n3(trunk+1), n2 — n4(trunk+2). The paper draws one trunk
/// hop; in a wide-area deployment the shared path is long, which is
/// where result sharing pays most.
fn fig3_graph(trunk: u32) -> Graph {
    let n = trunk as usize + 3;
    let mut g = Graph::new(n);
    for i in 0..=trunk {
        g.set_position(NodeId(i), i as f64 / n as f64, 0.5);
        if i > 0 {
            g.add_edge_by_distance(NodeId(i - 1), NodeId(i)).unwrap();
        }
    }
    g.set_position(NodeId(trunk + 1), (trunk + 1) as f64 / n as f64, 0.2);
    g.set_position(NodeId(trunk + 2), (trunk + 1) as f64 / n as f64, 0.8);
    g.add_edge_by_distance(NodeId(trunk), NodeId(trunk + 1))
        .unwrap();
    g.add_edge_by_distance(NodeId(trunk), NodeId(trunk + 2))
        .unwrap();
    g
}

fn run(share: bool, items: i64, trunk: u32) -> (Cosmos, Vec<usize>) {
    let nodes = trunk as usize + 3;
    let cfg = CosmosConfig {
        nodes,
        processor_fraction: 1.0 / nodes as f64, // node 0 only
        merging_enabled: share,
        ..CosmosConfig::default()
    };
    let mut sys = Cosmos::with_graph(cfg, fig3_graph(trunk)).unwrap();
    let cat = auction_catalog(60.0);
    let open = cosmos_types::StreamName::from("OpenAuction");
    let closed = cosmos_types::StreamName::from("ClosedAuction");
    sys.register_stream(
        "OpenAuction",
        open_auction_schema(),
        cat.stats(&open).unwrap().clone(),
        NodeId(0),
    )
    .unwrap();
    sys.register_stream(
        "ClosedAuction",
        closed_auction_schema(),
        cat.stats(&closed).unwrap().clone(),
        NodeId(0),
    )
    .unwrap();
    let q1 = sys.submit_query(Q1, NodeId(trunk + 1)).unwrap();
    let q2 = sys.submit_query(Q2, NodeId(trunk + 2)).unwrap();
    let events = AuctionGenerator::new(11, 60_000, 6 * 3_600_000).generate(items);
    sys.run(events).unwrap();
    let counts = vec![sys.results(q1).len(), sys.results(q2).len()];
    (sys, counts)
}

fn scenario(items: i64, trunk: u32) {
    let (share_sys, share_counts) = run(true, items, trunk);
    let (nonshare_sys, nonshare_counts) = run(false, items, trunk);
    assert_eq!(
        share_counts, nonshare_counts,
        "sharing must not change any query's results"
    );

    let mut links = vec![];
    for i in 1..=trunk {
        links.push((format!("trunk {}-{}", i - 1, i), NodeId(i - 1), NodeId(i)));
    }
    links.push((
        "n2-n3 (split)".to_string(),
        NodeId(trunk),
        NodeId(trunk + 1),
    ));
    links.push((
        "n2-n4 (split)".to_string(),
        NodeId(trunk),
        NodeId(trunk + 2),
    ));
    let mut rows = Vec::new();
    for (name, a, b) in &links {
        let ns = nonshare_sys.link_bytes(*a, *b);
        let sh = share_sys.link_bytes(*a, *b);
        let saved = if ns > 0 {
            100.0 * (1.0 - sh as f64 / ns as f64)
        } else {
            0.0
        };
        rows.push(vec![
            name.clone(),
            ns.to_string(),
            sh.to_string(),
            format!("{saved:.1}%"),
        ]);
        record_json(
            "fig3_result_sharing",
            &serde_json::json!({
                "trunk_hops": trunk, "link": name,
                "non_share_bytes": ns, "share_bytes": sh, "items": items,
            }),
        );
    }
    rows.push(vec![
        "TOTAL".into(),
        nonshare_sys.total_bytes().to_string(),
        share_sys.total_bytes().to_string(),
        format!(
            "{:.1}%",
            100.0 * (1.0 - share_sys.total_bytes() as f64 / nonshare_sys.total_bytes() as f64)
        ),
    ]);
    print_table(
        &format!(
            "Figure 3 — Result Stream Delivery ({trunk}-hop trunk, {items} auctions; \
             q1: {} results, q2: {} results)",
            share_counts[0], share_counts[1]
        ),
        &["link", "Non-Share bytes", "Share bytes", "saved"],
        &rows,
    );
    assert!(
        share_sys.link_bytes(NodeId(0), NodeId(1)) < nonshare_sys.link_bytes(NodeId(0), NodeId(1)),
        "the shared trunk link must carry fewer bytes with merging"
    );
}

fn main() {
    // The paper's figure: one trunk hop between the SPE (n1) and the
    // split point (n2).
    scenario(400, 1);
    // A wide-area variant: the longer the shared path, the more the
    // single shared stream saves overall.
    scenario(400, 6);
    println!(
        "\nshape check: the overlapping content of s1 and s2 crosses every \
         trunk link once instead of twice (paper Figure 3(b) vs 3(a)); \
         total savings grow with trunk length."
    );
}
