//! Ablation A5: SPE operator throughput (window join, grouped
//! aggregation, selection/projection).

use cosmos_cql::parse_query;
use cosmos_spe::{AnalyzedQuery, Executor};
use cosmos_types::{AttrType, Schema, Timestamp, Tuple, Value};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn catalog(name: &str) -> Option<Schema> {
    match name {
        "L" | "R" => Some(Schema::of(&[
            ("k", AttrType::Int),
            ("v", AttrType::Float),
            ("timestamp", AttrType::Int),
        ])),
        _ => None,
    }
}

fn executor(text: &str) -> Executor {
    let q = AnalyzedQuery::analyze(&parse_query(text).unwrap(), catalog).unwrap();
    Executor::new(q, "out").unwrap()
}

fn inputs(n: usize, two_streams: bool) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            let stream = if two_streams && i % 2 == 1 { "R" } else { "L" };
            Tuple::new(
                stream,
                Timestamp(i as i64 * 100),
                vec![
                    Value::Int(rng.gen_range(0..64)),
                    Value::Float(rng.gen_range(0.0..100.0)),
                    Value::Int(i as i64 * 100),
                ],
            )
        })
        .collect()
}

fn bench_ops(c: &mut Criterion) {
    let n = 10_000;
    let single = inputs(n, false);
    let double = inputs(n, true);
    let cases: Vec<(&str, &str, &Vec<Tuple>)> = vec![
        (
            "select_project",
            "SELECT k, v FROM L [Now] WHERE v > 50.0",
            &single,
        ),
        (
            "window_join_10s",
            "SELECT A.k, A.v, B.v FROM L [Range 10 Second] A, R [Range 10 Second] B \
             WHERE A.k = B.k",
            &double,
        ),
        (
            "grouped_aggregate",
            "SELECT k, COUNT(*), AVG(v), MAX(v) FROM L [Range 30 Second] GROUP BY k",
            &single,
        ),
    ];
    let mut group = c.benchmark_group("spe_operators");
    group.sample_size(10);
    for (name, text, data) in cases {
        group.throughput(Throughput::Elements(n as u64));
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut ex = executor(text);
                let mut emitted = 0usize;
                for t in data.iter() {
                    emitted += ex.push(black_box(t)).len();
                }
                emitted
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
