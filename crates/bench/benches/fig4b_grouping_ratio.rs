//! Figure 4(b): grouping ratio (#groups / #queries) vs. number of
//! queries, for uniform and zipf query distributions.
//!
//! Same setup as Figure 4(a). Expected shape (paper): the ratio falls
//! with more queries and with stronger skew; "generally, the lower the
//! grouping ratio, the higher the benefit ratio could be".

use cosmos::experiment::{run_fig4, Fig4Config};
use cosmos_bench::{print_table, record_json, scale, Scale};
use cosmos_workload::Popularity;

fn main() {
    let (nodes, checkpoints, reps) = match scale() {
        Scale::Full => (1000, vec![2000, 4000, 6000, 8000, 10000], 20),
        Scale::Quick => (300, vec![500, 1000, 1500, 2000, 2500, 3000], 5),
    };
    let pops = [
        Popularity::Uniform,
        Popularity::Zipf(1.0),
        Popularity::Zipf(1.5),
        Popularity::Zipf(2.0),
    ];
    let mut series = Vec::new();
    for pop in pops {
        let cfg = Fig4Config {
            nodes,
            checkpoints: checkpoints.clone(),
            popularity: pop,
            reps,
            ..Fig4Config::default()
        };
        let points = run_fig4(&cfg).expect("experiment runs");
        series.push((pop.label(), points));
    }
    let mut rows = Vec::new();
    for (i, &q) in checkpoints.iter().enumerate() {
        let mut row = vec![q.to_string()];
        for (_, pts) in &series {
            row.push(format!("{:.3}", pts[i].grouping_ratio));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("#Queries")
        .chain(series.iter().map(|(l, _)| l.as_str()))
        .collect();
    print_table(
        &format!(
            "Figure 4(b) — Grouping Ratio ({} nodes, {} reps, {:?} scale)",
            nodes,
            reps,
            scale()
        ),
        &headers,
        &rows,
    );
    for (label, pts) in &series {
        for p in pts {
            record_json(
                "fig4b_grouping_ratio",
                &serde_json::json!({
                    "distribution": label,
                    "queries": p.queries,
                    "grouping_ratio": p.grouping_ratio,
                    "nodes": nodes,
                    "reps": reps,
                }),
            );
        }
    }
    println!(
        "\nshape check: grouping ratio falls with #queries and with skew \
         (paper Figure 4(b))."
    );
}
