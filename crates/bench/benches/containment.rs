//! Ablation A6: cost of the containment check and of representative
//! merging as query complexity grows.

use cosmos_cql::parse_query;
use cosmos_query::{contained, merge};
use cosmos_spe::AnalyzedQuery;
use cosmos_types::{AttrType, Field, Schema};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// A catalog with a configurable-width stream.
fn wide_catalog(width: usize) -> impl Fn(&str) -> Option<Schema> {
    move |name| {
        (name == "W").then(|| {
            let mut fields = vec![Field::new("timestamp", AttrType::Int)];
            for i in 0..width {
                fields.push(Field::new(format!("a{i}"), AttrType::Float));
            }
            Schema::new(fields).unwrap()
        })
    }
}

/// A query with `preds` range predicates.
fn query(width: usize, preds: usize, offset: f64) -> AnalyzedQuery {
    let cols: Vec<String> = (0..width).map(|i| format!("a{i}")).collect();
    let mut text = format!("SELECT {} FROM W [Range 1 Hour]", cols.join(", "));
    if preds > 0 {
        let clauses: Vec<String> = (0..preds)
            .map(|i| format!("a{i} BETWEEN {} AND {}", offset, offset + 50.0))
            .collect();
        text.push_str(&format!(" WHERE {}", clauses.join(" AND ")));
    }
    AnalyzedQuery::analyze(&parse_query(&text).unwrap(), wide_catalog(width)).unwrap()
}

fn bench_containment(c: &mut Criterion) {
    let mut group = c.benchmark_group("containment");
    group.sample_size(30);
    for preds in [1usize, 4, 8, 16] {
        let width = preds.max(4);
        let tight = query(width, preds, 10.0);
        let loose = query(width, preds, 0.0); // wider windows of values
        group.bench_with_input(BenchmarkId::new("contained", preds), &preds, |b, _| {
            b.iter(|| contained(black_box(&tight), black_box(&loose)))
        });
        group.bench_with_input(BenchmarkId::new("merge", preds), &preds, |b, _| {
            b.iter(|| merge(black_box(&tight), black_box(&loose)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_containment);
criterion_main!(benches);
