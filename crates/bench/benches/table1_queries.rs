//! Table 1: the auction-monitoring example queries, verified end to end.
//!
//! The paper's Table 1 lists q1, q2 and the representative q3 it claims
//! "contains q1 and q2". This harness verifies every claim the paper
//! makes about them, on generated auction data:
//!
//! 1. q1 ⊑ q3 and q2 ⊑ q3 (Theorem 1);
//! 2. merge(q1, q2) equals q3 up to column order;
//! 3. the re-tightening profiles have exactly the paper's p1/p2 shape
//!    (window filters `−T ≤ O.timestamp − C.timestamp ≤ 0`);
//! 4. splitting q3's result stream through p1/p2 reproduces q1's and
//!    q2's exact result streams.

use cosmos_bench::{print_table, record_json};
use cosmos_cql::parse_query;
use cosmos_query::{contained, merge, retighten_profile};
use cosmos_spe::{oracle, AnalyzedQuery};
use cosmos_types::StreamName;
use cosmos_workload::auction::{auction_catalog, AuctionGenerator, Q1, Q2, Q3};

fn main() {
    let cat = auction_catalog(60.0);
    let analyze =
        |t: &str| AnalyzedQuery::analyze(&parse_query(t).unwrap(), cat.schema_fn()).unwrap();
    let (q1, q2, q3) = (analyze(Q1), analyze(Q2), analyze(Q3));
    let rep = merge(&q1, &q2).unwrap();

    let mut rows = Vec::new();
    let mut check = |name: &str, ok: bool| {
        rows.push(vec![
            name.to_string(),
            if ok { "PASS" } else { "FAIL" }.to_string(),
        ]);
        assert!(ok, "{name}");
    };

    check("q1 ⊑ q3 (Theorem 1)", contained(&q1, &q3));
    check("q2 ⊑ q3 (Theorem 1)", contained(&q2, &q3));
    check("¬(q3 ⊑ q1)", !contained(&q3, &q1));
    check("¬(q3 ⊑ q2)", !contained(&q3, &q2));
    let cols = |a: &AnalyzedQuery| {
        a.output_schema
            .names()
            .map(str::to_string)
            .collect::<std::collections::BTreeSet<_>>()
    };
    check("merge(q1,q2) ≡ q3 (columns)", cols(&rep) == cols(&q3));
    check(
        "merge(q1,q2) ≡ q3 (windows)",
        rep.streams[0].window == q3.streams[0].window
            && rep.streams[1].window == q3.streams[1].window,
    );

    // Profiles p1/p2.
    let s3 = StreamName::from("s3");
    let p1 = retighten_profile(&q1, &rep, &s3).unwrap();
    let p2 = retighten_profile(&q2, &rep, &s3).unwrap();
    let diff_of = |p: &cosmos_cbn::Profile| {
        let entry = p.entry(&s3).unwrap();
        let d: Vec<_> = entry.filters[0]
            .diff_constraints()
            .map(|(a, b, r)| format!("{} - {} in {}", a, b, r))
            .collect();
        d.join("; ")
    };
    check(
        "p1 window filter = −3h ≤ O.ts − C.ts ≤ 0",
        diff_of(&p1).contains("[0, 10800000]"), // C.ts − O.ts ∈ [0, 3h]
    );
    check(
        "p2 window filter = −5h ≤ O.ts − C.ts ≤ 0",
        diff_of(&p2).contains("[0, 18000000]"),
    );

    // End-to-end split equivalence on generated auction data.
    let events = AuctionGenerator::new(3, 60_000, 6 * 3_600_000).generate(300);
    let rep_out = oracle::evaluate(&rep, "s3", &events);
    let normalize = |ts: &[cosmos_types::Tuple],
                     schema: &cosmos_types::Schema,
                     profile: &cosmos_cbn::Profile| {
        let mut rows: Vec<(cosmos_types::Timestamp, Vec<(String, cosmos_types::Value)>)> = ts
            .iter()
            .filter(|t| profile.covers_tuple(t, schema))
            .map(|t| {
                let (pt, ps) = profile.project_tuple(t, schema).unwrap();
                let mut row: Vec<_> = ps
                    .names()
                    .map(str::to_string)
                    .zip(pt.values().iter().cloned())
                    .collect();
                row.sort();
                (pt.timestamp, row)
            })
            .collect();
        rows.sort();
        rows
    };
    let direct = |q: &AnalyzedQuery| {
        let out = oracle::evaluate(q, "direct", &events);
        let mut rows: Vec<(cosmos_types::Timestamp, Vec<(String, cosmos_types::Value)>)> = out
            .iter()
            .map(|t| {
                let mut row: Vec<_> = q
                    .output_schema
                    .names()
                    .map(str::to_string)
                    .zip(t.values().iter().cloned())
                    .collect();
                row.sort();
                (t.timestamp, row)
            })
            .collect();
        rows.sort();
        rows
    };
    let split1 = normalize(&rep_out, &rep.output_schema, &p1);
    let split2 = normalize(&rep_out, &rep.output_schema, &p2);
    check(
        "split(p1, q3 results) ≡ q1 results",
        split1.len() == direct(&q1).len() && split1 == direct(&q1),
    );
    check(
        "split(p2, q3 results) ≡ q2 results",
        split2.len() == direct(&q2).len() && split2 == direct(&q2),
    );
    check(
        "q1 results ⊂ q3 results (strict)",
        split1.len() < rep_out.len() && !split1.is_empty(),
    );

    print_table(
        "Table 1 — auction queries q1/q2/q3: paper claims verified",
        &["claim", "status"],
        &rows,
    );
    record_json(
        "table1_queries",
        &serde_json::json!({
            "q3_results": rep_out.len(),
            "q1_results": split1.len(),
            "q2_results": split2.len(),
            "all_pass": true,
        }),
    );
}
