//! Ablation A7: one shared MST dissemination tree vs per-source
//! shortest-path trees ("multiple overlay dissemination trees", §3.2).
//!
//! The MST minimizes total link weight; per-source SPTs minimize each
//! stream's delivery delay. This harness runs the same workload through
//! both modes on the same power-law overlay and compares total bytes
//! and delay-weighted cost. Results are identical by construction; the
//! wire costs differ.

use cosmos::{Cosmos, CosmosConfig};
use cosmos_bench::{print_table, record_json};
use cosmos_types::{NodeId, StreamName};
use cosmos_workload::sensor::{merged_inputs, sensor_catalog, stream_name, SensorGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NODES: usize = 60;
const STREAMS: usize = 6;
const QUERIES: usize = 24;

fn run(per_source: bool) -> (u64, f64, usize) {
    let mut sys = Cosmos::new(CosmosConfig {
        nodes: NODES,
        seed: 17,
        processor_fraction: 0.1,
        per_source_trees: per_source,
        ..CosmosConfig::default()
    })
    .unwrap();
    let cat = sensor_catalog();
    let mut rng = StdRng::seed_from_u64(4);
    for i in 0..STREAMS {
        let key = StreamName::from(stream_name(i).as_str());
        sys.register_stream(
            stream_name(i).as_str(),
            cat.schema(&key).unwrap().clone(),
            cat.stats(&key).unwrap().clone(),
            NodeId(rng.gen_range(0..NODES as u32)),
        )
        .unwrap();
    }
    let mut delivered = 0usize;
    let mut qids = Vec::new();
    for i in 0..QUERIES {
        let s = stream_name(i % STREAMS);
        let user = NodeId(rng.gen_range(0..NODES as u32));
        qids.push(
            sys.submit_query(
                &format!("SELECT node_id, ambient_temp FROM {s} [Now]"),
                user,
            )
            .unwrap(),
        );
    }
    let mut gens: Vec<SensorGenerator> =
        (0..STREAMS).map(|i| SensorGenerator::new(i, 33)).collect();
    sys.run(merged_inputs(&mut gens, 120_000)).unwrap();
    for q in qids {
        delivered += sys.results(q).len();
    }
    (sys.total_bytes(), sys.weighted_cost(), delivered)
}

fn main() {
    let (mst_bytes, mst_cost, mst_delivered) = run(false);
    let (spt_bytes, spt_cost, spt_delivered) = run(true);
    assert_eq!(
        mst_delivered, spt_delivered,
        "tree choice must not change results"
    );
    print_table(
        &format!(
            "Ablation A7 — shared MST vs per-source trees \
             ({NODES} nodes, {STREAMS} streams, {QUERIES} queries, {mst_delivered} deliveries)"
        ),
        &["dissemination", "bytes", "delay-weighted cost"],
        &[
            vec![
                "shared MST".into(),
                mst_bytes.to_string(),
                format!("{mst_cost:.1}"),
            ],
            vec![
                "per-source SPTs".into(),
                spt_bytes.to_string(),
                format!("{spt_cost:.1}"),
            ],
            vec![
                "SPT / MST".into(),
                format!("{:.3}", spt_bytes as f64 / mst_bytes as f64),
                format!("{:.3}", spt_cost / mst_cost),
            ],
        ],
    );
    record_json(
        "multi_tree",
        &serde_json::json!({
            "mst_bytes": mst_bytes, "spt_bytes": spt_bytes,
            "mst_cost": mst_cost, "spt_cost": spt_cost,
            "delivered": mst_delivered,
        }),
    );
    println!(
        "\nshape check: per-source trees trade total bytes for delivery \
         delay; both modes deliver identical results."
    );
}
