#![forbid(unsafe_code)]
//! `cosmos-verify` — statically verify a dumped network snapshot.
//!
//! ```text
//! cosmos-verify <snapshot.json> [--quiet] [--json]
//! cosmos-verify -            # read the snapshot from stdin
//! ```
//!
//! Prints every finding as a one-line diagnostic and exits non-zero iff
//! any `error`-level violation (V1–V6) was found. `--json` emits one
//! JSON array of findings in the [`cosmos_lint::JsonDiagnostic`] form
//! shared with `cosmos-lint` and `cosmos-bound`. Produce snapshots with
//! `cosmos-sim snapshot --seed N` or [`cosmos::Cosmos::snapshot`] +
//! [`cosmos::NetworkSnapshot::to_json`].

use cosmos::NetworkSnapshot;
use cosmos_lint::{JsonDiagnostic, Severity};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quiet = args.iter().any(|a| a == "--quiet" || a == "-q");
    let json = args.iter().any(|a| a == "--json");
    let paths: Vec<&String> = args
        .iter()
        .filter(|a| !a.starts_with("--") && a.as_str() != "-q")
        .collect();
    let [path] = paths.as_slice() else {
        eprintln!("usage: cosmos-verify <snapshot.json | -> [--quiet] [--json]");
        return ExitCode::from(2);
    };

    let text = if path.as_str() == "-" {
        let mut buf = String::new();
        if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
            eprintln!("cosmos-verify: reading stdin: {e}");
            return ExitCode::from(2);
        }
        buf
    } else {
        match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cosmos-verify: reading {path}: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let snap = match NetworkSnapshot::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cosmos-verify: {e}");
            return ExitCode::from(2);
        }
    };

    let diags = cosmos_verify::verify_snapshot(&snap);
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if json {
        let findings: Vec<JsonDiagnostic> = diags.iter().map(JsonDiagnostic::from).collect();
        println!(
            "{}",
            serde_json::to_string(&findings).expect("findings always serialize")
        );
    } else if !quiet {
        for d in &diags {
            println!("{}", d.headline());
        }
    }
    if errors > 0 {
        eprintln!(
            "cosmos-verify: {errors} violation{} in {} finding{}",
            if errors == 1 { "" } else { "s" },
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
        );
        ExitCode::FAILURE
    } else {
        if !quiet && !json {
            println!(
                "cosmos-verify: ok — {} node{}, {} group{}, {} advisory finding{}",
                snap.nodes,
                if snap.nodes == 1 { "" } else { "s" },
                snap.groups.len(),
                if snap.groups.len() == 1 { "" } else { "s" },
                diags.len(),
                if diags.len() == 1 { "" } else { "s" },
            );
        }
        ExitCode::SUCCESS
    }
}
