//! Independent re-derivation of continuous-query containment
//! (Theorems 1 and 2) for the V4 invariant.
//!
//! This deliberately does **not** call `cosmos_query::containment` —
//! the point is to re-prove from the ASTs what the query manager relied
//! on when it merged, and flag disagreements. The structure follows the
//! paper directly: Theorem 1 reduces SPJ containment to `∞`-window
//! containment plus component-wise window containment `T¹ᵢ ≤ T²ᵢ`;
//! Theorem 2 covers aggregates with *equal* windows, identical
//! grouping, and member selectivity acting on whole groups. One
//! deliberate strengthening: per-stream selection implication uses the
//! semantic [`cosmos_cbn::conjunction_implies`] (difference-constraint
//! refutation) instead of the library's syntactic per-key check, so
//! this derivation proves a superset of what the library proves — any
//! containment the library claims that this module cannot re-derive is
//! a genuine disagreement.

use cosmos_cbn::conjunction_implies;
use cosmos_spe::analyze::{AnalyzedQuery, OutputColumn, QAttr};
use std::collections::{BTreeMap, BTreeSet};

/// Stream correspondence `member.streams[i] ↔ rep.streams[map[i]]`:
/// a name-preserving bijection, positional among self-join duplicates
/// (the same convention the merge layer uses).
pub fn correspondence(member: &AnalyzedQuery, rep: &AnalyzedQuery) -> Option<Vec<usize>> {
    if member.streams.len() != rep.streams.len() {
        return None;
    }
    let mut taken = vec![false; rep.streams.len()];
    member
        .streams
        .iter()
        .map(|b| {
            let j = rep
                .streams
                .iter()
                .enumerate()
                .position(|(j, r)| !taken[j] && r.stream == b.stream)?;
            taken[j] = true;
            Some(j)
        })
        .collect()
}

/// Rename a member-qualified attribute into the representative's
/// binding namespace.
fn rename(qa: &QAttr, member: &AnalyzedQuery, rep: &AnalyzedQuery, map: &[usize]) -> Option<QAttr> {
    let i = member.stream_index(&qa.binding)?;
    Some(QAttr::new(&rep.streams[map[i]].binding, &qa.name))
}

/// Tiny union-find over qualified attribute names, for the transitive
/// closure of join equalities.
#[derive(Default)]
struct Classes {
    parent: BTreeMap<String, String>,
}

impl Classes {
    fn root(&mut self, a: &str) -> String {
        let p = match self.parent.get(a) {
            Some(p) if p != a => p.clone(),
            _ => return a.to_string(),
        };
        let r = self.root(&p);
        self.parent.insert(a.to_string(), r.clone());
        r
    }

    fn join(&mut self, a: &str, b: &str) {
        let (ra, rb) = (self.root(a), self.root(b));
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }

    fn same(&mut self, a: &str, b: &str) -> bool {
        self.root(a) == self.root(b)
    }
}

/// Output column names of a query, renamed into `rep`'s bindings when a
/// map is given (aggregates print as `FUNC(arg)`).
fn outputs(
    q: &AnalyzedQuery,
    renamed: Option<(&AnalyzedQuery, &[usize])>,
) -> Option<BTreeSet<String>> {
    let name_of = |qa: &QAttr| -> Option<String> {
        match renamed {
            Some((rep, map)) => rename(qa, q, rep, map).map(|r| r.qualified()),
            None => Some(qa.qualified()),
        }
    };
    q.output
        .iter()
        .map(|c| match c {
            OutputColumn::Attr(qa) => name_of(qa),
            OutputColumn::Agg { func, arg } => {
                let inner = match arg {
                    Some(qa) => name_of(qa)?,
                    None => "*".to_string(),
                };
                Some(format!("{func}({inner})"))
            }
        })
        .collect()
}

/// The `∞`-window (relational) containment core shared by both
/// theorems: every joined combination the member admits, the
/// representative admits, and the member's output is derivable from the
/// representative's.
fn infinity_contained(member: &AnalyzedQuery, rep: &AnalyzedQuery, map: &[usize]) -> bool {
    // Every representative join must follow transitively from the
    // member's joins (renamed into the representative's bindings).
    let mut classes = Classes::default();
    for j in &member.joins {
        let (Some(l), Some(r)) = (
            rename(&j.left, member, rep, map),
            rename(&j.right, member, rep, map),
        ) else {
            return false;
        };
        classes.join(&l.qualified(), &r.qualified());
    }
    if !rep
        .joins
        .iter()
        .all(|j| classes.same(&j.left.qualified(), &j.right.qualified()))
    {
        return false;
    }
    // Per-stream: member selection ⇒ representative selection,
    // semantically.
    if !map
        .iter()
        .enumerate()
        .all(|(i, &k)| conjunction_implies(&member.selections[i], &rep.selections[k]))
    {
        return false;
    }
    // Member output ⊆ representative output.
    match (outputs(member, Some((rep, map))), outputs(rep, None)) {
        (Some(m), Some(r)) if m.is_subset(&r) => {}
        _ => return false,
    }
    member.distinct == rep.distinct
}

/// `member ⊑ rep`, dispatching on query shape. Returns the stream
/// correspondence on success so callers can reuse it.
pub fn contained(member: &AnalyzedQuery, rep: &AnalyzedQuery) -> Option<Vec<usize>> {
    if member.is_aggregate() != rep.is_aggregate() {
        return None;
    }
    let map = correspondence(member, rep)?;
    if member.is_aggregate() {
        // Theorem 2: equal windows and identical grouping.
        for (i, &k) in map.iter().enumerate() {
            if member.streams[i].window != rep.streams[k].window {
                return None;
            }
        }
        let gm: BTreeSet<String> = member
            .group_by
            .iter()
            .map(|g| rename(g, member, rep, &map).map(|q| q.qualified()))
            .collect::<Option<_>>()?;
        let gr: BTreeSet<String> = rep.group_by.iter().map(|g| g.qualified()).collect();
        if gm != gr || member.group_by.len() != rep.group_by.len() {
            return None;
        }
        // Member-only selectivity must act on whole groups: each
        // selection attribute is a grouping attribute, or constrained
        // identically in the representative.
        for (i, sel) in member.selections.iter().enumerate() {
            for attr in sel.referenced_attrs() {
                let qa = QAttr::new(&member.streams[i].binding, &attr);
                let renamed = rename(&qa, member, rep, &map)?;
                let grouped = rep
                    .group_by
                    .iter()
                    .any(|g| g.qualified() == renamed.qualified());
                let identical =
                    rep.selections[map[i]].constraint_for(&attr) == sel.constraint_for(&attr);
                if !grouped && !identical {
                    return None;
                }
            }
        }
    } else {
        // Theorem 1: component-wise window containment.
        for (i, &k) in map.iter().enumerate() {
            if member.streams[i].window > rep.streams[k].window {
                return None;
            }
        }
    }
    infinity_contained(member, rep, &map).then_some(map)
}
