#![forbid(unsafe_code)]
//! `cosmos-verify` — whole-network static verification of a deployed
//! COSMOS system.
//!
//! The input is a [`cosmos::NetworkSnapshot`] (see
//! [`cosmos::Cosmos::snapshot`]): dissemination trees, per-router
//! reverse-path interests and local subscriptions, stream
//! advertisements, and query groups with their representatives and
//! re-tightened member profiles. Over that snapshot this crate proves —
//! symbolically, via the `cosmos_cbn::sat` difference-constraint kernel
//! extended with implication/intersection over disjunctive filters —
//! five invariant families, reported as [`cosmos_lint::Diagnostic`]s
//! with stable `V0xxx` codes:
//!
//! | family | codes | claim |
//! |--------|-------|-------|
//! | V1 no black holes | `V0101` | every subscriber's profile is implied by the interest installed at every hop of its tree path from each advertising source |
//! | V2 no over-delivery / lost attributes | `V0201`, `V0202` | forwarding edges follow the dissemination tree toward the origin (so no node receives a stream from two upstreams and no subscriber is registered twice), and early projection never drops an attribute a downstream filter or member query references |
//! | V3 tree well-formedness | `V0301` | every dissemination tree is acyclic, connected, spans the overlay, and per-source trees are rooted at their advertiser |
//! | V4 merge soundness | `V0401` | Theorem 1/2 containment of each member in its representative, re-derived from the ASTs independently of `cosmos_query::containment`, agrees with the library |
//! | V5 split-filter exactness | `V0501` | `member ≡ representative ∘ re-tightened filter`, checked as mutual semantic implication (Lemma 1 window re-tightening included) |
//! | V6 abstraction consistency | `V0601`–`V0604` | the interval abstractions (`cosmos_bound::absint`) of the filters along every delivery path meet non-emptily — no statically-dead delivery — and no deployed representative has provably unbounded executor state |
//! | V7 closure pruning | `V0701` | a stream closed by its final watermark has no routing state left at any router |
//! | V8 overload accounting | `V0801` | every overload ledger satisfies `offered = delivered + shed + staged` (tuples *and* bytes), and every query with ledger traffic still has its user subscription installed — shedding never silently black-holes a retained query |
//!
//! `V0001` marks a snapshot too inconsistent to analyze (unparseable
//! query text, dangling subscriber, missing advertisement for a result
//! stream). Every check is *sound*: an `Error`-level finding means the
//! deployed routing state provably violates the paper's delivery
//! contract — before any tuple is published.

mod contain;

use cosmos::snapshot::{
    GroupSnapshot, LocalSubscriber, NetworkSnapshot, SubscriberKind, TreeTopology,
};
use cosmos_bound::absint;
use cosmos_cbn::{filters_imply, Conjunction, DiffRange, Profile, ProfileEntry, Projection};
use cosmos_lint::{Diagnostic, Severity};
use cosmos_query::merge::TIMESTAMP_ATTR;
use cosmos_spe::analyze::{AnalyzedQuery, OutputColumn, QAttr};
use cosmos_types::{NodeId, Schema, StreamName};
use std::collections::BTreeMap;

pub use contain::{contained as rederive_contained, correspondence};
pub use cosmos_lint::{Diagnostic as VerifyDiagnostic, Severity as VerifySeverity};

/// Stable diagnostic codes for the V1–V5 invariant families.
pub mod codes {
    /// The snapshot itself is inconsistent (unparseable query text,
    /// dangling subscriber id, missing result-stream advertisement).
    pub const SNAPSHOT: &str = "V0001";
    /// V1: a subscriber's interest is not covered along its tree path —
    /// tuples it asked for would never reach it.
    pub const BLACK_HOLE: &str = "V0101";
    /// V2: a forwarding edge departs from the dissemination tree (risk
    /// of duplicate or misrouted delivery), or a subscriber id is
    /// registered at two routers.
    pub const MISROUTED_EDGE: &str = "V0201";
    /// V2: early projection drops an attribute a downstream filter,
    /// subscriber, or member query references.
    pub const PROJECTION_DROPS: &str = "V0202";
    /// V3: a dissemination tree is cyclic, disconnected, non-spanning,
    /// or not rooted at its advertiser.
    pub const TREE_MALFORMED: &str = "V0301";
    /// V4: re-derived Theorem 1/2 containment disagrees with the
    /// library, or a member is simply not contained in its
    /// representative.
    pub const CONTAINMENT: &str = "V0401";
    /// V5: the installed split filter is not equivalent to the member's
    /// re-tightening of the representative (over- or under-delivery).
    pub const SPLIT_FILTER: &str = "V0501";
    /// V6: the interval abstractions along a subscriber's delivery path
    /// are disjoint — no concrete tuple can ever reach it (a
    /// statically-dead delivery the hop filters silently absorb).
    pub const DEAD_DELIVERY: &str = "V0601";
    /// V6: a subscriber's own filter abstraction is empty — every
    /// disjunct is unsatisfiable, so the subscription matches nothing.
    pub const EMPTY_SUBSCRIPTION: &str = "V0602";
    /// V6: a group member's installed split-filter abstraction is empty
    /// — the member can never receive a result tuple.
    pub const EMPTY_SPLIT: &str = "V0603";
    /// V6: a deployed representative has provably unbounded executor
    /// state (`cosmos_bound::check_query` error) — it should have been
    /// rejected at admission.
    pub const UNBOUNDED_REP_STATE: &str = "V0604";
    /// V7: a router still holds routing state (an interest entry or a
    /// local-profile entry) for a stream its final watermark closed —
    /// the watermark-driven pruning leaked.
    pub const CLOSED_LEAK: &str = "V0701";
    /// V8: an overload ledger breaks the conservation identity
    /// (`offered = delivered + shed + staged`, tuples and bytes), or a
    /// query with ledger traffic has lost its user subscription — load
    /// shedding black-holed a retained query.
    pub const SHED_UNACCOUNTED: &str = "V0801";
}

/// Whether a verification result contains any `Error`-level violation.
pub fn has_violations(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Statically verify all five invariant families over a snapshot.
/// Returns every finding; [`has_violations`] separates hard violations
/// from advisory notes.
pub fn verify_snapshot(snap: &NetworkSnapshot) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let routers_ok = check_router_table(snap, &mut diags);
    let forest = check_trees(snap, &mut diags);
    check_subscriber_uniqueness(snap, &mut diags);
    if let (Some(forest), true) = (&forest, routers_ok) {
        check_forwarding_edges(snap, forest, &mut diags);
        check_delivery_paths(snap, forest, &mut diags);
        check_path_abstractions(snap, forest, &mut diags);
    }
    check_closed_streams(snap, &mut diags);
    check_overload_ledgers(snap, &mut diags);
    check_groups(snap, &mut diags);
    diags
}

// ---------------------------------------------------------------------
// V8: overload accounting
// ---------------------------------------------------------------------

/// Every overload ledger must balance — `offered = delivered + shed +
/// staged`, tuples and bytes — and a query the controller is still
/// accounting for must still have its user subscription installed
/// somewhere. A missing subscription with a live ledger means load
/// shedding black-holed a retained query: tuples are being dropped for
/// a consumer that can no longer receive the survivors.
fn check_overload_ledgers(snap: &NetworkSnapshot, diags: &mut Vec<Diagnostic>) {
    for l in &snap.overload {
        let tuples_ok = l.offered_tuples == l.delivered_tuples + l.shed_tuples + l.staged_tuples;
        let bytes_ok = l.offered_bytes == l.delivered_bytes + l.shed_bytes + l.staged_bytes;
        if !tuples_ok || !bytes_ok {
            diags.push(Diagnostic::error(
                codes::SHED_UNACCOUNTED,
                format!(
                    "overload ledger for {} violates conservation: offered \
                     {}t/{}b != delivered {}t/{}b + shed {}t/{}b + staged {}t/{}b",
                    l.query,
                    l.offered_tuples,
                    l.offered_bytes,
                    l.delivered_tuples,
                    l.delivered_bytes,
                    l.shed_tuples,
                    l.shed_bytes,
                    l.staged_tuples,
                    l.staged_bytes,
                ),
                None,
            ));
        }
        if l.offered_tuples == 0 {
            continue;
        }
        // Only queries still deployed are checkable: a withdrawn query
        // legitimately keeps its ledger (history is never erased) with
        // no subscription left. A *member* without its user sub is the
        // black hole.
        let Some(member) = snap
            .groups
            .iter()
            .flat_map(|g| &g.members)
            .find(|m| m.query == l.query)
        else {
            continue;
        };
        let subscribed = snap.routers.iter().any(|r| {
            r.node == member.user
                && r.local_subscribers.iter().any(|s| {
                    s.id == member.user_sub
                        && s.kind
                            == (SubscriberKind::User {
                                query: member.query,
                            })
                })
        });
        if !subscribed {
            diags.push(Diagnostic::error(
                codes::SHED_UNACCOUNTED,
                format!(
                    "{} has overload-ledger traffic ({} tuples offered) but no \
                     installed user subscription — load shedding black-holed a \
                     retained query",
                    l.query, l.offered_tuples
                ),
                None,
            ));
        }
    }
}

// ---------------------------------------------------------------------
// V7: stream-closure pruning completeness
// ---------------------------------------------------------------------

/// A closed stream (final watermark disseminated) must have no routing
/// state left anywhere: the driver prunes every interest entry when the
/// `+∞` punctuation passes, so a survivor proves the pruning leaked.
/// The delivery-path families (V1/V2/V6) deliberately skip closed
/// streams — there is nothing left to walk, and a leak is *this*
/// finding, not a black hole.
fn check_closed_streams(snap: &NetworkSnapshot, diags: &mut Vec<Diagnostic>) {
    for stream in &snap.closed_streams {
        if snap.advertisement(stream).is_none() {
            diags.push(Diagnostic::warning(
                codes::CLOSED_LEAK,
                format!("closed stream '{stream}' is not advertised (stale closure record)"),
                None,
            ));
        }
        for r in &snap.routers {
            for (down, profile) in &r.neighbor_interests {
                if profile.entry(stream).is_some() {
                    diags.push(Diagnostic::error(
                        codes::CLOSED_LEAK,
                        format!(
                            "{} still holds an interest from {down} for closed stream \
                             '{stream}' — watermark-driven pruning leaked",
                            r.node
                        ),
                        None,
                    ));
                }
            }
            for sub in &r.local_subscribers {
                if sub.profile.entry(stream).is_some() {
                    diags.push(Diagnostic::error(
                        codes::CLOSED_LEAK,
                        format!(
                            "subscriber {} at {} still subscribes to closed stream \
                             '{stream}' — watermark-driven pruning leaked",
                            sub.id, r.node
                        ),
                        None,
                    ));
                }
            }
        }
    }
}

/// The router table must cover every overlay node, in node order — the
/// path walks index into it directly. A live snapshot satisfies this by
/// construction; a hand-edited JSON dump may not.
fn check_router_table(snap: &NetworkSnapshot, diags: &mut Vec<Diagnostic>) -> bool {
    if snap.routers.len() != snap.nodes
        || snap
            .routers
            .iter()
            .enumerate()
            .any(|(i, r)| r.node.index() != i)
    {
        diags.push(Diagnostic::error(
            codes::SNAPSHOT,
            format!(
                "router table does not cover the {} overlay nodes in order — \
                 path checks skipped",
                snap.nodes
            ),
            None,
        ));
        return false;
    }
    true
}

// ---------------------------------------------------------------------
// V3: tree well-formedness
// ---------------------------------------------------------------------

/// A validated tree: the parent table, supporting the LCA path walks
/// V1/V2 need.
struct TreeView {
    parent: Vec<Option<NodeId>>,
}

impl TreeView {
    /// The unique tree path from `u` to `v`, inclusive. Assumes both
    /// nodes are in range (validated before construction).
    fn path(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let ancestors = |mut x: NodeId| -> Vec<NodeId> {
            let mut out = vec![x];
            while let Some(p) = self.parent[x.index()] {
                out.push(p);
                x = p;
            }
            out
        };
        let (au, av) = (ancestors(u), ancestors(v));
        let pos: BTreeMap<NodeId, usize> = au.iter().enumerate().map(|(i, n)| (*n, i)).collect();
        let (lca_v, lca_u) = av
            .iter()
            .enumerate()
            .find_map(|(j, n)| pos.get(n).map(|&i| (j, i)))
            .expect("a validated tree has a common root");
        let mut path: Vec<NodeId> = au[..=lca_u].to_vec();
        path.extend(av[..lca_v].iter().rev());
        path
    }
}

/// Every dissemination tree of the snapshot, validated.
struct Forest {
    shared: TreeView,
    source: BTreeMap<NodeId, TreeView>,
}

impl Forest {
    fn view_for(&self, origin: NodeId) -> &TreeView {
        self.source.get(&origin).unwrap_or(&self.shared)
    }
}

fn validate_tree(
    label: &str,
    t: &TreeTopology,
    nodes: usize,
    diags: &mut Vec<Diagnostic>,
) -> Option<TreeView> {
    let mut bad = |msg: String| diags.push(Diagnostic::error(codes::TREE_MALFORMED, msg, None));
    if t.node_count != nodes {
        bad(format!(
            "{label}: tree spans {} nodes but the overlay has {nodes}",
            t.node_count
        ));
        return None;
    }
    if t.root.index() >= nodes {
        bad(format!("{label}: root {} is not an overlay node", t.root));
        return None;
    }
    if t.edges.len() != nodes.saturating_sub(1) {
        bad(format!(
            "{label}: {} edges cannot span {nodes} nodes acyclically (expected {})",
            t.edges.len(),
            nodes - 1
        ));
        return None;
    }
    let mut parent: Vec<Option<NodeId>> = vec![None; nodes];
    for &(p, c) in &t.edges {
        if p.index() >= nodes || c.index() >= nodes {
            bad(format!("{label}: edge {p} → {c} leaves the overlay"));
            return None;
        }
        if c == t.root {
            bad(format!("{label}: root {c} has parent {p}"));
            return None;
        }
        if let Some(prev) = parent[c.index()] {
            bad(format!(
                "{label}: node {c} has two parents ({prev} and {p})"
            ));
            return None;
        }
        parent[c.index()] = Some(p);
    }
    // Every node must reach the root in < n steps (connectivity; a
    // cycle of orphaned nodes would loop forever otherwise).
    for i in 0..nodes {
        let mut x = NodeId(i as u32);
        let mut steps = 0usize;
        while let Some(p) = parent[x.index()] {
            x = p;
            steps += 1;
            if steps > nodes {
                bad(format!("{label}: node n{i} sits on a cycle"));
                return None;
            }
        }
        if x != t.root {
            bad(format!(
                "{label}: node n{i} is disconnected from root {} (reaches {x})",
                t.root
            ));
            return None;
        }
    }
    Some(TreeView { parent })
}

fn check_trees(snap: &NetworkSnapshot, diags: &mut Vec<Diagnostic>) -> Option<Forest> {
    let shared = validate_tree("shared tree", &snap.shared_tree, snap.nodes, diags);
    let mut source = BTreeMap::new();
    let mut all_ok = shared.is_some();
    for t in &snap.source_trees {
        match validate_tree(
            &format!("source tree rooted at {}", t.root),
            t,
            snap.nodes,
            diags,
        ) {
            Some(view) => {
                // V3: a per-source tree must be rooted at its advertiser.
                // A tree whose advertisement has since been withdrawn is
                // stale but harmless (lazily built, never pruned).
                if !snap.advertisements.iter().any(|a| a.origin == t.root) {
                    diags.push(Diagnostic {
                        code: codes::TREE_MALFORMED,
                        severity: Severity::Note,
                        message: format!(
                            "source tree rooted at {} has no advertised stream (stale)",
                            t.root
                        ),
                        span: None,
                    });
                }
                source.insert(t.root, view);
            }
            None => all_ok = false,
        }
    }
    for a in &snap.advertisements {
        if a.origin.index() >= snap.nodes {
            diags.push(Diagnostic::error(
                codes::TREE_MALFORMED,
                format!(
                    "stream '{}' is advertised at {}, which is not an overlay node",
                    a.stream, a.origin
                ),
                None,
            ));
            all_ok = false;
        }
    }
    all_ok.then(|| Forest {
        shared: shared.expect("checked"),
        source,
    })
}

// ---------------------------------------------------------------------
// V2a: subscriber uniqueness
// ---------------------------------------------------------------------

fn check_subscriber_uniqueness(snap: &NetworkSnapshot, diags: &mut Vec<Diagnostic>) {
    let mut seen: BTreeMap<u64, NodeId> = BTreeMap::new();
    for r in &snap.routers {
        for s in &r.local_subscribers {
            if let Some(prev) = seen.insert(s.id.raw(), r.node) {
                diags.push(Diagnostic::error(
                    codes::MISROUTED_EDGE,
                    format!(
                        "subscriber {} is registered at both {prev} and {} — \
                         every covered tuple would be delivered twice",
                        s.id, r.node
                    ),
                    None,
                ));
            }
            if matches!(s.kind, SubscriberKind::User { query } if query.raw() == u64::MAX) {
                diags.push(Diagnostic::error(
                    codes::SNAPSHOT,
                    format!(
                        "subscriber {} at {} belongs to no SPE input and no user query",
                        s.id, r.node
                    ),
                    None,
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------
// V2b: forwarding edges follow the dissemination tree
// ---------------------------------------------------------------------

fn check_forwarding_edges(snap: &NetworkSnapshot, forest: &Forest, diags: &mut Vec<Diagnostic>) {
    for r in &snap.routers {
        for (down, profile) in &r.neighbor_interests {
            for (stream, _) in profile.iter() {
                if snap.closed_streams.contains(stream) {
                    continue; // V7 reports the leak
                }
                let Some(adv) = snap.advertisement(stream) else {
                    diags.push(Diagnostic::warning(
                        codes::MISROUTED_EDGE,
                        format!(
                            "{} holds an interest from {down} for '{stream}', which is \
                             not advertised (stale routing state)",
                            r.node
                        ),
                        None,
                    ));
                    continue;
                };
                // Reverse-path invariant: the edge `r.node → down` must
                // be the unique tree edge on `down`'s path toward the
                // origin. Any other edge would let a node receive the
                // stream from two upstreams — duplicate delivery.
                let tree = forest.view_for(adv.origin);
                let path = tree.path(*down, adv.origin);
                if path.len() < 2 || path[1] != r.node {
                    diags.push(Diagnostic::error(
                        codes::MISROUTED_EDGE,
                        format!(
                            "{} would forward '{stream}' to {down}, but the dissemination \
                             tree routes that stream to {down} via {} — a second \
                             forwarding edge into the same subtree duplicates delivery",
                            r.node,
                            path.get(1)
                                .map(|n| n.to_string())
                                .unwrap_or_else(|| "nobody (it is the origin)".into()),
                        ),
                        None,
                    ));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// V1 + V2c: black holes and attribute availability along tree paths
// ---------------------------------------------------------------------

/// Intersection of two projections.
fn meet(a: &Projection, b: &Projection) -> Projection {
    match (a, b) {
        (Projection::All, x) | (x, Projection::All) => x.clone(),
        (Projection::Attrs(x), Projection::Attrs(y)) => {
            Projection::Attrs(x.intersection(y).cloned().collect())
        }
    }
}

/// Everything a subscriber entry needs to arrive: its projection plus
/// every attribute its own filters reference (the local match runs on
/// the delivered tuple).
fn needed_projection(entry: &ProfileEntry) -> Projection {
    let mut p = entry.projection.clone();
    if matches!(p, Projection::Attrs(_)) {
        p.extend(
            entry
                .filters
                .iter()
                .flat_map(|f| f.referenced_attrs())
                .collect::<Vec<_>>(),
        );
    }
    p
}

fn check_delivery_paths(snap: &NetworkSnapshot, forest: &Forest, diags: &mut Vec<Diagnostic>) {
    for r in &snap.routers {
        for sub in &r.local_subscribers {
            for (stream, entry) in sub.profile.iter() {
                if snap.closed_streams.contains(stream) {
                    continue; // V7 reports the leak
                }
                check_one_path(snap, forest, r.node, sub, stream, entry, diags);
            }
        }
    }
}

fn check_one_path(
    snap: &NetworkSnapshot,
    forest: &Forest,
    node: NodeId,
    sub: &LocalSubscriber,
    stream: &StreamName,
    entry: &ProfileEntry,
    diags: &mut Vec<Diagnostic>,
) {
    let who = format!("subscriber {} at {node}", sub.id);
    let Some(adv) = snap.advertisement(stream) else {
        diags.push(Diagnostic::error(
            codes::BLACK_HOLE,
            format!("{who} awaits '{stream}', which nobody advertises — a black hole"),
            None,
        ));
        return;
    };
    let tree = forest.view_for(adv.origin);
    let path = tree.path(node, adv.origin);
    // Walk the path in tuple-flow order (origin → subscriber), tracking
    // which attributes survive each hop's early projection.
    let mut avail = Projection::All;
    for w in path.windows(2).rev() {
        let (down, up) = (w[0], w[1]);
        let interest = snap.routers[up.index()]
            .neighbor_interests
            .iter()
            .find(|(n, _)| *n == down)
            .and_then(|(_, p)| p.entry(stream));
        let Some(interest) = interest else {
            diags.push(Diagnostic::error(
                codes::BLACK_HOLE,
                format!(
                    "{who} subscribed to '{stream}' (origin {}), but {up} holds no \
                     interest for it on behalf of {down} — tuples stop at {up}",
                    adv.origin
                ),
                None,
            ));
            return;
        };
        // V1: everything the subscriber's filters accept must pass this
        // hop's filter.
        if !filters_imply(&entry.filters, &interest.filters) {
            diags.push(Diagnostic::error(
                codes::BLACK_HOLE,
                format!(
                    "{who}: the interest installed at {up} (toward {down}) for '{stream}' \
                     does not cover the subscriber's filter — matching tuples are \
                     dropped mid-path",
                ),
                None,
            ));
            return;
        }
        // V2: this hop's filter must only reference attributes that
        // survived the upstream projections.
        for f in &interest.filters {
            for attr in f.referenced_attrs() {
                if !avail.contains(&attr) {
                    diags.push(Diagnostic::error(
                        codes::PROJECTION_DROPS,
                        format!(
                            "{who}: the filter at {up} (toward {down}) for '{stream}' \
                             references '{attr}', which an upstream projection dropped",
                        ),
                        None,
                    ));
                    return;
                }
            }
        }
        avail = meet(&avail, &interest.projection);
    }
    // V2: the surviving attribute set must cover everything the
    // subscriber projects or filters on.
    let need = needed_projection(entry);
    if !avail.covers(&need) {
        diags.push(Diagnostic::error(
            codes::PROJECTION_DROPS,
            format!(
                "{who}: early projection along the path from {} drops attributes of \
                 '{stream}' the subscriber needs ({need:?} ⊄ {avail:?})",
                adv.origin
            ),
            None,
        ));
    }
}

// ---------------------------------------------------------------------
// V6: interval-abstraction consistency along delivery paths
// ---------------------------------------------------------------------

/// Abstract-interpretation pass over the same tree walks as V1/V2: the
/// per-attribute interval abstraction of each hop's filters
/// ([`cosmos_bound::absint`]) must meet non-emptily with every other
/// hop's and with the subscriber's own — an empty meet proves that no
/// concrete tuple can ever complete the path. Complementary to V1's
/// implication check: implication asks "does the hop *cover* the
/// subscriber", this asks "can anything at all get through".
fn check_path_abstractions(snap: &NetworkSnapshot, forest: &Forest, diags: &mut Vec<Diagnostic>) {
    for r in &snap.routers {
        for sub in &r.local_subscribers {
            for (stream, entry) in sub.profile.iter() {
                if snap.closed_streams.contains(stream) {
                    continue; // V7 reports the leak
                }
                let who = format!("subscriber {} at {}", sub.id, r.node);
                let sub_abs = match absint::filters_abstraction(&entry.filters) {
                    Some(a) => a,
                    None => {
                        diags.push(Diagnostic::warning(
                            codes::EMPTY_SUBSCRIPTION,
                            format!(
                                "{who}: every filter disjunct for '{stream}' is \
                                 unsatisfiable — the subscription matches nothing",
                            ),
                            None,
                        ));
                        continue;
                    }
                };
                let Some(adv) = snap.advertisement(stream) else {
                    continue; // V1 reports the black hole
                };
                let path = forest.view_for(adv.origin).path(r.node, adv.origin);
                // Meet the hop abstractions in tuple-flow order; start
                // from the subscriber's own (non-empty) abstraction.
                let mut flow = sub_abs;
                for w in path.windows(2).rev() {
                    let (down, up) = (w[0], w[1]);
                    let Some(interest) = snap.routers[up.index()]
                        .neighbor_interests
                        .iter()
                        .find(|(n, _)| *n == down)
                        .and_then(|(_, p)| p.entry(stream))
                    else {
                        break; // V1 reports the missing interest
                    };
                    let Some(hop_abs) = absint::filters_abstraction(&interest.filters) else {
                        diags.push(Diagnostic::error(
                            codes::DEAD_DELIVERY,
                            format!(
                                "{who}: the interest installed at {up} (toward {down}) for \
                                 '{stream}' is unsatisfiable — every tuple dies at that hop",
                            ),
                            None,
                        ));
                        break;
                    };
                    match absint::intersect(&flow, &hop_abs) {
                        Some(met) => flow = met,
                        None => {
                            diags.push(Diagnostic::error(
                                codes::DEAD_DELIVERY,
                                format!(
                                    "{who}: the interval abstraction of the filter at {up} \
                                     (toward {down}) for '{stream}' is disjoint from what \
                                     the rest of the path admits — no tuple can ever \
                                     complete the delivery",
                                ),
                                None,
                            ));
                            break;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// V4 + V5: merge soundness and split-filter exactness
// ---------------------------------------------------------------------

/// The name a representative's result schema gives to `attr` of its
/// `k`-th stream, if the representative outputs it.
fn rep_out_name(rep: &AnalyzedQuery, k: usize, attr: &str) -> Option<String> {
    let qa = QAttr::new(&rep.streams[k].binding, attr);
    let name = if rep.qualified_names() {
        qa.qualified()
    } else {
        qa.name
    };
    rep.output_schema.contains(&name).then_some(name)
}

/// The name of a member output column inside the representative's
/// result schema.
fn member_col_in_rep(
    member: &AnalyzedQuery,
    rep: &AnalyzedQuery,
    map: &[usize],
    col: &OutputColumn,
) -> Option<String> {
    let renamed = |qa: &QAttr| -> Option<String> {
        let i = member.stream_index(&qa.binding)?;
        let r = QAttr::new(&rep.streams[map[i]].binding, &qa.name);
        Some(if rep.qualified_names() {
            r.qualified()
        } else {
            r.name
        })
    };
    match col {
        OutputColumn::Attr(qa) => {
            let name = renamed(qa)?;
            rep.output_schema.contains(&name).then_some(name)
        }
        OutputColumn::Agg { func, arg } => {
            let inner = match arg {
                Some(qa) => renamed(qa)?,
                None => "*".to_string(),
            };
            let name = format!("{func}({inner})");
            rep.output_schema.contains(&name).then_some(name)
        }
    }
}

/// The constraints a representative's result stream satisfies *by
/// construction*, expressed over its result-schema names: its own
/// selections plus the window bounds its executor enforces (for a join,
/// every surviving pair satisfies `−Tₖ ≤ tsₖ − tsₗ ≤ Tₗ`). Both sides
/// of the V5 equivalence are interpreted under this context.
fn rep_context(rep: &AnalyzedQuery) -> Conjunction {
    let mut ctx = Conjunction::always();
    for (k, sel) in rep.selections.iter().enumerate() {
        for (attr, c) in sel.attr_constraints() {
            if let Some(name) = rep_out_name(rep, k, attr) {
                ctx.constrain(name, c.clone());
            }
        }
        for (x, y, r) in sel.diff_constraints() {
            if let (Some(nx), Some(ny)) = (rep_out_name(rep, k, x), rep_out_name(rep, k, y)) {
                ctx.diff(nx, ny, *r);
            }
        }
    }
    if !rep.is_aggregate() && rep.streams.len() > 1 {
        for k in 0..rep.streams.len() {
            for l in (k + 1)..rep.streams.len() {
                let (tk, tl) = (rep.streams[k].window, rep.streams[l].window);
                if tk.is_infinite() && tl.is_infinite() {
                    continue;
                }
                let (Some(nk), Some(nl)) = (
                    rep_out_name(rep, k, TIMESTAMP_ATTR),
                    rep_out_name(rep, l, TIMESTAMP_ATTR),
                ) else {
                    continue;
                };
                let lo = if tk.is_infinite() {
                    f64::NEG_INFINITY
                } else {
                    -(tk.millis() as f64)
                };
                let hi = if tl.is_infinite() {
                    f64::INFINITY
                } else {
                    tl.millis() as f64
                };
                ctx.diff(nk, nl, DiffRange::new(lo, hi));
            }
        }
    }
    ctx
}

/// Build the member's *expected* split predicate over the
/// representative's result schema: the member's own selections and
/// difference constraints, renamed, plus the Lemma 1 window
/// re-tightening `−Tᵢ ≤ tsᵢ − tsⱼ ≤ Tⱼ` — all conjoined onto the
/// representative context. Pushes a V0501 for any member constraint the
/// result schema cannot express and the representative does not already
/// enforce.
fn expected_split(
    member: &AnalyzedQuery,
    rep: &AnalyzedQuery,
    map: &[usize],
    ctx: &Conjunction,
    who: &str,
    diags: &mut Vec<Diagnostic>,
) -> Conjunction {
    let mut expected = ctx.clone();
    for (i, sel) in member.selections.iter().enumerate() {
        let k = map[i];
        let rep_sel = &rep.selections[k];
        for (attr, c) in sel.attr_constraints() {
            match rep_out_name(rep, k, attr) {
                Some(name) => {
                    expected.constrain(name, c.clone());
                }
                None => {
                    if !rep_sel.constraint_for(attr).implies(c) {
                        diags.push(Diagnostic::error(
                            codes::SPLIT_FILTER,
                            format!(
                                "{who}: selection on '{attr}' cannot be re-tightened — the \
                                 representative neither outputs the attribute nor enforces \
                                 the constraint",
                            ),
                            None,
                        ));
                    }
                }
            }
        }
        for (x, y, r) in sel.diff_constraints() {
            match (rep_out_name(rep, k, x), rep_out_name(rep, k, y)) {
                (Some(nx), Some(ny)) => {
                    expected.diff(nx, ny, *r);
                }
                _ => {
                    let enforced = rep_sel.diff_constraints().any(|(a, b, rr)| {
                        (a == x && b == y && rr.implies(r))
                            || (a == y && b == x && rr.implies(&r.flipped()))
                    });
                    if !enforced {
                        diags.push(Diagnostic::error(
                            codes::SPLIT_FILTER,
                            format!(
                                "{who}: difference constraint on '{x} − {y}' cannot be \
                                 re-tightened from the representative's result stream",
                            ),
                            None,
                        ));
                    }
                }
            }
        }
    }
    // Lemma 1: window re-tightening for joins.
    if !member.is_aggregate() && member.streams.len() > 1 {
        for i in 0..member.streams.len() {
            for j in (i + 1)..member.streams.len() {
                let (ti, tj) = (member.streams[i].window, member.streams[j].window);
                if ti.is_infinite() && tj.is_infinite() {
                    continue;
                }
                let names = (
                    rep_out_name(rep, map[i], TIMESTAMP_ATTR),
                    rep_out_name(rep, map[j], TIMESTAMP_ATTR),
                );
                let (Some(ni), Some(nj)) = names else {
                    let loosened = member.streams[i].window < rep.streams[map[i]].window
                        || member.streams[j].window < rep.streams[map[j]].window;
                    if loosened {
                        diags.push(Diagnostic::error(
                            codes::SPLIT_FILTER,
                            format!(
                                "{who}: the representative loosened a window but its result \
                                 stream lacks the timestamp columns Lemma 1 re-tightening \
                                 needs",
                            ),
                            None,
                        ));
                    }
                    continue;
                };
                let lo = if ti.is_infinite() {
                    f64::NEG_INFINITY
                } else {
                    -(ti.millis() as f64)
                };
                let hi = if tj.is_infinite() {
                    f64::INFINITY
                } else {
                    tj.millis() as f64
                };
                expected.diff(ni, nj, DiffRange::new(lo, hi));
            }
        }
    }
    expected
}

/// Locate the profile actually installed for a subscriber id.
fn installed_profile(
    snap: &NetworkSnapshot,
    node: NodeId,
    sub: cosmos_types::SubscriberId,
) -> Option<&Profile> {
    snap.routers
        .get(node.index())?
        .local_subscribers
        .iter()
        .find(|s| s.id == sub)
        .map(|s| &s.profile)
}

fn check_groups(snap: &NetworkSnapshot, diags: &mut Vec<Diagnostic>) {
    let schemas: BTreeMap<String, Schema> = snap
        .advertisements
        .iter()
        .map(|a| (a.stream.as_str().to_string(), a.schema.clone()))
        .collect();
    let schema_of = |name: &str| schemas.get(name).cloned();
    let analyze = |text: &str| -> Result<AnalyzedQuery, String> {
        let parsed = cosmos_cql::parse_query(text).map_err(|e| e.to_string())?;
        AnalyzedQuery::analyze(&parsed, schema_of).map_err(|e| e.to_string())
    };

    for g in &snap.groups {
        let rep = match analyze(&g.representative_cql) {
            Ok(rep) => rep,
            Err(e) => {
                diags.push(Diagnostic::error(
                    codes::SNAPSHOT,
                    format!(
                        "group '{}': representative query does not re-analyze: {e}",
                        g.result_stream
                    ),
                    None,
                ));
                continue;
            }
        };
        match snap.advertisement(&g.result_stream) {
            None => diags.push(Diagnostic::error(
                codes::SNAPSHOT,
                format!(
                    "group '{}' produces a result stream that is not advertised",
                    g.result_stream
                ),
                None,
            )),
            Some(adv) => {
                if adv.origin != g.processor {
                    diags.push(Diagnostic::error(
                        codes::TREE_MALFORMED,
                        format!(
                            "result stream '{}' is advertised at {} but produced at {}",
                            g.result_stream, adv.origin, g.processor
                        ),
                        None,
                    ));
                }
                if adv.schema != rep.output_schema {
                    diags.push(Diagnostic::error(
                        codes::SNAPSHOT,
                        format!(
                            "result stream '{}' is advertised with a schema different \
                             from its representative's output schema",
                            g.result_stream
                        ),
                        None,
                    ));
                }
            }
        }
        // V6: a deployed representative must not have provably unbounded
        // executor state — the admission gate rejects such queries, so a
        // snapshot containing one was tampered with or predates the gate.
        for d in cosmos_bound::check_query(&rep) {
            if d.severity == Severity::Error {
                diags.push(Diagnostic::error(
                    codes::UNBOUNDED_REP_STATE,
                    format!(
                        "group '{}': deployed representative has unbounded state \
                         ({}: {})",
                        g.result_stream, d.code, d.message
                    ),
                    None,
                ));
            }
        }
        let ctx = rep_context(&rep);
        for m in &g.members {
            let who = format!("group '{}', member {}", g.result_stream, m.query);
            let member = match analyze(&m.cql) {
                Ok(q) => q,
                Err(e) => {
                    diags.push(Diagnostic::error(
                        codes::SNAPSHOT,
                        format!("{who}: member query does not re-analyze: {e}"),
                        None,
                    ));
                    continue;
                }
            };
            check_member(
                snap,
                g,
                &rep,
                &ctx,
                &(m.user, m.user_sub),
                &member,
                &who,
                diags,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn check_member(
    snap: &NetworkSnapshot,
    g: &GroupSnapshot,
    rep: &AnalyzedQuery,
    ctx: &Conjunction,
    user: &(NodeId, cosmos_types::SubscriberId),
    member: &AnalyzedQuery,
    who: &str,
    diags: &mut Vec<Diagnostic>,
) {
    // V4: re-derive Theorem 1/2 containment independently and compare
    // with the library's verdict.
    let lib = cosmos_query::contained(member, rep);
    let mine = contain::contained(member, rep);
    match (lib, mine.is_some()) {
        (true, true) => {}
        (true, false) => diags.push(Diagnostic::error(
            codes::CONTAINMENT,
            format!(
                "{who}: the library claims the member is contained in the representative \
                 but the verifier cannot re-derive Theorem 1/2 containment",
            ),
            None,
        )),
        (false, true) => diags.push(Diagnostic::warning(
            codes::CONTAINMENT,
            format!(
                "{who}: the verifier proves containment the library's syntactic check \
                 misses (library is conservative here)",
            ),
            None,
        )),
        (false, false) => diags.push(Diagnostic::error(
            codes::CONTAINMENT,
            format!(
                "{who}: the representative does not contain the member — the merge is \
                 unsound and the member can never receive its full result",
            ),
            None,
        )),
    }

    // V5 needs a correspondence even when containment failed.
    let Some(map) = mine.or_else(|| contain::correspondence(member, rep)) else {
        return;
    };

    let expected = expected_split(member, rep, &map, ctx, who, diags);

    let (unode, usub) = *user;
    let Some(profile) = installed_profile(snap, unode, usub) else {
        diags.push(Diagnostic::error(
            codes::SPLIT_FILTER,
            format!(
                "{who}: no result subscription is installed at {unode} — the member \
                     receives nothing"
            ),
            None,
        ));
        return;
    };
    let Some(entry) = profile.entry(&g.result_stream) else {
        diags.push(Diagnostic::error(
            codes::SPLIT_FILTER,
            format!(
                "{who}: the installed subscription at {unode} has no entry for result \
                 stream '{}'",
                g.result_stream
            ),
            None,
        ));
        return;
    };

    // V6: an empty split-filter abstraction means the member can never
    // receive a result tuple (every installed disjunct is unsat).
    if absint::filters_abstraction(&entry.filters).is_none() {
        diags.push(Diagnostic::warning(
            codes::EMPTY_SPLIT,
            format!(
                "{who}: the installed split filter's interval abstraction is empty — \
                 the member's subscription can never match a result tuple",
            ),
            None,
        ));
    }

    // V2: the installed projection must keep every member output column.
    for col in &member.output {
        match member_col_in_rep(member, rep, &map, col) {
            Some(name) => {
                if !entry.projection.contains(&name) {
                    diags.push(Diagnostic::error(
                        codes::PROJECTION_DROPS,
                        format!(
                            "{who}: the installed split projection drops result column \
                             '{name}' the member query outputs",
                        ),
                        None,
                    ));
                }
            }
            None => diags.push(Diagnostic::error(
                codes::SPLIT_FILTER,
                format!(
                    "{who}: the representative's result schema lacks a column the member \
                     outputs ({})",
                    member.column_name(col)
                ),
                None,
            )),
        }
    }

    // V5: `member ≡ representative ∘ installed filter`, as mutual
    // implication under the representative context.
    let installed: Vec<Conjunction> = if entry.filters.is_empty() {
        vec![ctx.clone()]
    } else {
        entry.filters.iter().map(|f| f.and(ctx)).collect()
    };
    let expected_side = [expected];
    if !filters_imply(&installed, &expected_side) {
        diags.push(Diagnostic::error(
            codes::SPLIT_FILTER,
            format!(
                "{who}: the installed split filter admits result tuples outside the \
                 member query (the re-tightening of the representative's loosened \
                 constraints is missing or too weak) — over-delivery",
            ),
            None,
        ));
    }
    if !filters_imply(&expected_side, &installed) {
        diags.push(Diagnostic::error(
            codes::SPLIT_FILTER,
            format!(
                "{who}: the installed split filter drops result tuples the member query \
                 selects — under-delivery",
            ),
            None,
        ));
    }
}
