//! V7 integration tests: stream-closure pruning completeness. A closed
//! stream must leave no routing state behind, and a snapshot where it
//! did (simulated tampering) must be flagged as a leak — not as a
//! confusing black hole on a stream that will never publish again.

use cosmos::{Cosmos, CosmosConfig, DisorderRuntime, LatePolicy};
use cosmos_query::{AttrStats, StreamStats};
use cosmos_types::{AttrType, NodeId, Schema, StreamName, TimeDelta, Timestamp, Tuple, Value};
use cosmos_verify::{codes, has_violations, verify_snapshot};

fn system() -> Cosmos {
    let cfg = CosmosConfig {
        nodes: 8,
        seed: 11,
        ..CosmosConfig::default()
    };
    let mut sys = Cosmos::new(cfg).unwrap();
    sys.register_stream(
        "S",
        Schema::of(&[
            ("k", AttrType::Int),
            ("x", AttrType::Float),
            ("timestamp", AttrType::Int),
        ]),
        StreamStats::with_rate(1.0)
            .attr("k", AttrStats::categorical(10.0))
            .attr("x", AttrStats::numeric(0.0, 100.0, 100.0)),
        NodeId(0),
    )
    .unwrap();
    sys
}

fn s_tuple(ts: i64, k: i64) -> Tuple {
    Tuple::new(
        "S",
        Timestamp(ts),
        vec![Value::Int(k), Value::Float(k as f64), Value::Int(ts)],
    )
}

fn disorder() -> DisorderRuntime {
    DisorderRuntime {
        bound: TimeDelta::from_millis(1_000),
        policy: LatePolicy::Revise {
            grace: TimeDelta::from_millis(1_000),
        },
    }
}

#[test]
fn closed_deployment_verifies_clean() {
    let mut sys = system();
    sys.submit_query("SELECT k, x FROM S [Now] WHERE x > 2.0", NodeId(5))
        .unwrap();
    sys.set_disorder(Some(disorder()));
    for ts in [2_000i64, 1_000, 3_000, 5_000, 4_000] {
        sys.publish(&s_tuple(ts, ts / 1_000)).unwrap();
    }
    sys.close_streams();
    let snap = sys.snapshot().unwrap();
    assert_eq!(snap.closed_streams, vec![StreamName::from("S")]);
    let diags = verify_snapshot(&snap);
    assert!(!has_violations(&diags), "closed deployment: {diags:?}");
    assert!(
        diags.iter().all(|d| d.code != codes::CLOSED_LEAK),
        "pruning is complete: {diags:?}"
    );
}

#[test]
fn leaked_closure_is_flagged_not_black_holed() {
    let mut sys = system();
    sys.submit_query("SELECT k, x FROM S [Now] WHERE x > 2.0", NodeId(5))
        .unwrap();
    // Mark 'S' closed *without* closing it: the live interest entries
    // for 'S' now simulate a pruning leak.
    let mut snap = sys.snapshot().unwrap();
    assert!(snap.closed_streams.is_empty());
    snap.closed_streams = vec![StreamName::from("S")];
    let diags = verify_snapshot(&snap);
    assert!(has_violations(&diags));
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::CLOSED_LEAK && d.message.contains("'S'")),
        "leak flagged: {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.code != codes::BLACK_HOLE),
        "closed streams are skipped by the path checks: {diags:?}"
    );
}
