//! V8 integration tests: overload accounting. A budgeted deployment's
//! snapshot carries its per-query shed ledgers; the verifier proves
//! conservation (`offered = delivered + shed + staged`, byte-exact)
//! and that shedding never black-holed a query that still exists. A
//! tampered ledger (simulated shed leak) must be flagged.

use cosmos::{Cosmos, CosmosConfig, MetricsConfig, OverloadConfig};
use cosmos_query::{AttrStats, StreamStats};
use cosmos_types::{AttrType, NodeId, Schema, TimeDelta, Timestamp, Tuple, Value};
use cosmos_verify::{codes, has_violations, verify_snapshot};

fn budgeted_system() -> Cosmos {
    let cfg = CosmosConfig {
        nodes: 8,
        seed: 11,
        ..CosmosConfig::default()
    };
    let mut sys = Cosmos::new(cfg).unwrap();
    sys.set_metrics_config(MetricsConfig {
        window: TimeDelta::from_secs(8),
        ..MetricsConfig::default()
    });
    sys.register_stream(
        "S",
        Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
        StreamStats::with_rate(10.0).attr("k", AttrStats::categorical(10.0)),
        NodeId(0),
    )
    .unwrap();
    sys.submit_query("SELECT k FROM S [Now]", NodeId(5))
        .unwrap();
    // A tight budget guarantees real shed traffic in the ledger.
    sys.set_overload(Some(OverloadConfig::uniform_bytes(64)));
    for i in 0..100i64 {
        sys.publish(&Tuple::new(
            "S",
            Timestamp(i * 100),
            vec![Value::Int(i % 7), Value::Int(i * 100)],
        ))
        .unwrap();
    }
    sys.close_streams();
    sys
}

#[test]
fn budgeted_deployment_verifies_clean() {
    let sys = budgeted_system();
    let snap = sys.snapshot().unwrap();
    assert!(!snap.overload.is_empty(), "ledger reached the snapshot");
    assert!(snap.overload[0].shed_tuples > 0, "the budget bit");
    let diags = verify_snapshot(&snap);
    assert!(!has_violations(&diags), "budgeted deployment: {diags:?}");
    assert!(
        diags.iter().all(|d| d.code != codes::SHED_UNACCOUNTED),
        "accounting is exact: {diags:?}"
    );
}

#[test]
fn leaked_shed_ledger_is_flagged() {
    let sys = budgeted_system();
    let mut snap = sys.snapshot().unwrap();
    // Simulate a shed leak: a tuple was dropped without being counted.
    snap.overload[0].shed_tuples -= 1;
    snap.overload[0].shed_bytes -= 20;
    let diags = verify_snapshot(&snap);
    assert!(has_violations(&diags));
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::SHED_UNACCOUNTED && d.message.contains("conservation")),
        "leak flagged: {diags:?}"
    );
}

#[test]
fn shed_black_hole_is_flagged() {
    let sys = budgeted_system();
    let mut snap = sys.snapshot().unwrap();
    // Simulate a black hole: the controller still accounts for a query
    // whose user subscription is gone from every router.
    let q = snap.overload[0].query;
    for r in &mut snap.routers {
        r.local_subscribers
            .retain(|s| s.kind != (cosmos::snapshot::SubscriberKind::User { query: q }));
    }
    let diags = verify_snapshot(&snap);
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::SHED_UNACCOUNTED && d.message.contains("black-holed")),
        "black hole flagged: {diags:?}"
    );
}

#[test]
fn unbudgeted_snapshot_has_no_ledger_section() {
    let cfg = CosmosConfig {
        nodes: 4,
        seed: 3,
        ..CosmosConfig::default()
    };
    let mut sys = Cosmos::new(cfg).unwrap();
    sys.register_stream(
        "S",
        Schema::of(&[("k", AttrType::Int), ("timestamp", AttrType::Int)]),
        StreamStats::with_rate(1.0).attr("k", AttrStats::categorical(4.0)),
        NodeId(0),
    )
    .unwrap();
    sys.submit_query("SELECT k FROM S [Now]", NodeId(2))
        .unwrap();
    let snap = sys.snapshot().unwrap();
    assert!(snap.overload.is_empty());
    // The serialized form omits the section entirely: old tooling
    // parses unbudgeted snapshots byte-unchanged.
    assert!(!snap.to_json().unwrap().contains("overload"));
    let diags = verify_snapshot(&snap);
    assert!(!has_violations(&diags), "{diags:?}");
}
