//! V6 integration tests: interval-abstraction consistency over live
//! snapshots, plus tamper scenarios the abstract interpreter must catch.

use cosmos::{Cosmos, CosmosConfig};
use cosmos_cbn::Conjunction;
use cosmos_lint::Severity;
use cosmos_query::{AttrStats, StreamStats};
use cosmos_types::{AttrType, NodeId, Schema};
use cosmos_verify::{codes, has_violations, verify_snapshot};

fn system() -> Cosmos {
    let cfg = CosmosConfig {
        nodes: 8,
        seed: 11,
        ..CosmosConfig::default()
    };
    let mut sys = Cosmos::new(cfg).unwrap();
    sys.register_stream(
        "S",
        Schema::of(&[
            ("k", AttrType::Int),
            ("x", AttrType::Float),
            ("timestamp", AttrType::Int),
        ]),
        StreamStats::with_rate(1.0)
            .attr("k", AttrStats::categorical(10.0))
            .attr("x", AttrStats::numeric(0.0, 100.0, 100.0)),
        NodeId(0),
    )
    .unwrap();
    sys
}

#[test]
fn live_snapshot_has_no_v6_findings() {
    let mut sys = system();
    sys.submit_query("SELECT k, x FROM S [Now] WHERE x > 50.0", NodeId(5))
        .unwrap();
    sys.submit_query(
        "SELECT k FROM S [Range 5 Second] WHERE x BETWEEN 10.0 AND 30.0",
        NodeId(3),
    )
    .unwrap();
    let diags = verify_snapshot(&sys.snapshot().unwrap());
    assert!(!has_violations(&diags), "clean deployment: {diags:?}");
    assert!(
        diags.iter().all(|d| !d.code.starts_with("V06")),
        "no V6 findings expected: {diags:?}"
    );
}

/// Line overlay 0 - 1 - 2 - 3 with the processor at node 0 and the
/// source at node 3: the SPE's source profile for 'S' (carrying the
/// query's selection) must propagate over every link, so each hop holds
/// an interest for 'S' the test can tamper with.
fn line_system() -> Cosmos {
    use cosmos_overlay::Graph;
    let mut g = Graph::new(4);
    for i in 0..4 {
        g.set_position(NodeId(i), i as f64 / 4.0, 0.0);
    }
    for i in 0..3u32 {
        g.add_edge_by_distance(NodeId(i), NodeId(i + 1)).unwrap();
    }
    let cfg = CosmosConfig {
        nodes: 4,
        processor_fraction: 0.25,
        ..CosmosConfig::default()
    };
    let mut sys = Cosmos::with_graph(cfg, g).unwrap();
    sys.register_stream(
        "S",
        Schema::of(&[
            ("k", AttrType::Int),
            ("x", AttrType::Float),
            ("timestamp", AttrType::Int),
        ]),
        StreamStats::with_rate(1.0)
            .attr("k", AttrStats::categorical(10.0))
            .attr("x", AttrStats::numeric(0.0, 100.0, 100.0)),
        NodeId(3),
    )
    .unwrap();
    sys
}

#[test]
fn disjoint_hop_filter_is_a_dead_delivery() {
    let mut sys = line_system();
    sys.submit_query("SELECT k, x FROM S [Now] WHERE x > 50.0", NodeId(0))
        .unwrap();
    let mut snap = sys.snapshot().unwrap();
    // Tamper: re-tighten every installed interest for 'S' to a range
    // disjoint from the SPE subscriber's `x > 50` — tuples die mid-path.
    let stream = cosmos_types::StreamName::from("S");
    let mut tampered = false;
    for r in &mut snap.routers {
        for (_, profile) in &mut r.neighbor_interests {
            if let Some(entry) = profile.entry(&stream) {
                let mut dead = Conjunction::always();
                dead.between("x", 0, 10);
                let mut e = entry.clone();
                e.filters = vec![dead];
                let mut p = cosmos_cbn::Profile::new();
                for (s, other) in profile.iter() {
                    if *s != stream {
                        p.add_entry(s.clone(), other.clone());
                    }
                }
                p.add_entry(stream.clone(), e);
                *profile = p;
                tampered = true;
            }
        }
    }
    assert!(
        tampered,
        "the path from node 3 must install interests for S"
    );
    let diags = verify_snapshot(&snap);
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::DEAD_DELIVERY && d.severity == Severity::Error),
        "expected V0601: {diags:?}"
    );
}

#[test]
fn unsatisfiable_subscription_is_flagged() {
    let mut sys = system();
    sys.submit_query("SELECT k, x FROM S [Now] WHERE x > 50.0", NodeId(5))
        .unwrap();
    let mut snap = sys.snapshot().unwrap();
    // Tamper: make one local subscriber's filter self-contradictory.
    let mut unsat = Conjunction::always();
    unsat.between("x", 0, 10);
    unsat.lower("x", 20, false);
    let sub = snap
        .routers
        .iter_mut()
        .flat_map(|r| r.local_subscribers.iter_mut())
        .next()
        .expect("a subscriber exists");
    // Profile has no iter_mut: rebuild it with the poisoned filters.
    let mut poisoned = cosmos_cbn::Profile::new();
    for (s, e) in sub.profile.iter() {
        let mut e2 = e.clone();
        e2.filters = vec![unsat.clone()];
        poisoned.add_entry(s.clone(), e2);
    }
    sub.profile = poisoned;
    let diags = verify_snapshot(&snap);
    assert!(
        diags.iter().any(|d| d.code == codes::EMPTY_SUBSCRIPTION),
        "expected V0602: {diags:?}"
    );
}

#[test]
fn unbounded_representative_is_flagged() {
    let mut sys = system();
    sys.submit_query(
        "SELECT k, x FROM S [Range 5 Second] WHERE x > 50.0",
        NodeId(5),
    )
    .unwrap();
    let mut snap = sys.snapshot().unwrap();
    assert!(!snap.groups.is_empty(), "merging deployment has a group");
    // Tamper: rewrite the representative to aggregate over [Unbounded]
    // (the admission gate would have rejected this query).
    snap.groups[0].representative_cql =
        "SELECT k, COUNT(*) FROM S [Unbounded] GROUP BY k".to_string();
    let diags = verify_snapshot(&snap);
    assert!(
        diags
            .iter()
            .any(|d| d.code == codes::UNBOUNDED_REP_STATE && d.severity == Severity::Error),
        "expected V0604: {diags:?}"
    );
}
