#![forbid(unsafe_code)]
//! `cosmos-lint` CLI: lint `.cql` files of `;`-separated statements.
//!
//! ```text
//! cosmos-lint [--schemas CATALOG] [--json] FILE...
//! ```
//!
//! Without `--schemas`, only the catalog-free lints run (satisfiability,
//! equality chains, windows); with a catalog file (see
//! [`cosmos_lint::parse_catalog`] for the format) the schema and type
//! checks run too. `--json` emits one JSON array of findings (the
//! [`JsonDiagnostic`] form shared with `cosmos-verify` and
//! `cosmos-bound`, wrapped with `file`/`statement` context) instead of
//! the human rendering. Exit status: 0 clean or warnings only, 1 if any
//! error-level finding (including parse errors), 2 on usage/IO problems.

use cosmos_lint::{codes, parse_catalog, Diagnostic, JsonDiagnostic, Severity};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut schemas: Option<String> = None;
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schemas" => match args.next() {
                Some(path) => schemas = Some(path),
                None => return usage("--schemas needs a file argument"),
            },
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("usage: cosmos-lint [--schemas CATALOG] [--json] FILE...");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag '{other}'"));
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        return usage("no input files");
    }

    let catalog = match schemas {
        None => None,
        Some(path) => match std::fs::read_to_string(&path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_catalog(&text) {
                Ok(cat) => Some(cat),
                Err(e) => {
                    eprintln!("cosmos-lint: {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("cosmos-lint: {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let (mut errors, mut warnings) = (0usize, 0usize);
    let mut findings: Vec<serde_json::Value> = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cosmos-lint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        for (n, stmt) in cosmos_cql::split_statements(&text).enumerate() {
            let diags = match cosmos_cql::parse_query_spanned(stmt) {
                Err(e) => vec![Diagnostic::error(codes::PARSE, e.message(), None)],
                Ok(sq) => match &catalog {
                    Some(cat) => {
                        cosmos_lint::check_query_with(&sq, |name: &str| cat.get(name).cloned())
                    }
                    None => cosmos_lint::check_query(&sq),
                },
            };
            for d in &diags {
                match d.severity {
                    Severity::Error => errors += 1,
                    Severity::Warning => warnings += 1,
                    Severity::Note => {}
                }
                if json {
                    findings.push(serde_json::json!({
                        "file": file,
                        "statement": n + 1,
                        "diagnostic": JsonDiagnostic::from(d),
                    }));
                } else {
                    println!("{file}: statement {}: {}", n + 1, d.render(stmt));
                }
            }
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string(&findings).expect("findings always serialize")
        );
    } else if errors + warnings > 0 {
        println!(
            "cosmos-lint: {errors} error{}, {warnings} warning{}",
            if errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
        );
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("cosmos-lint: {msg}\nusage: cosmos-lint [--schemas CATALOG] [--json] FILE...");
    ExitCode::from(2)
}
