//! Parser for the CLI's `--schemas` catalog files.
//!
//! One stream per line, attribute types spelled as [`AttrType`]
//! displays them:
//!
//! ```text
//! # XMark auction streams
//! OpenAuction(itemID INT, sellerID INT, start_price FLOAT, timestamp INT)
//! ClosedAuction(itemID INT, buyerID INT, timestamp INT)
//! ```

use cosmos_types::{AttrType, CosmosError, Result, Schema};
use std::collections::BTreeMap;

/// Parse a catalog file into per-stream schemas.
pub fn parse_catalog(text: &str) -> Result<BTreeMap<String, Schema>> {
    let mut out = BTreeMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err =
            |msg: &str| CosmosError::Schema(format!("catalog line {}: {msg}: {line}", lineno + 1));
        let open = line.find('(').ok_or_else(|| err("expected '('"))?;
        let close = line.rfind(')').ok_or_else(|| err("expected ')'"))?;
        if close < open || !line[close + 1..].trim().is_empty() {
            return Err(err("malformed stream declaration"));
        }
        let stream = line[..open].trim();
        if stream.is_empty() {
            return Err(err("missing stream name"));
        }
        let mut fields = Vec::new();
        for part in line[open + 1..close].split(',') {
            let mut it = part.split_whitespace();
            let (Some(name), Some(ty), None) = (it.next(), it.next(), it.next()) else {
                return Err(err("expected 'name TYPE' pairs"));
            };
            let ty = match ty.to_ascii_uppercase().as_str() {
                "BOOL" => AttrType::Bool,
                "INT" => AttrType::Int,
                "FLOAT" => AttrType::Float,
                "STRING" | "STR" => AttrType::Str,
                other => return Err(err(&format!("unknown type '{other}'"))),
            };
            fields.push((name, ty));
        }
        let pairs: Vec<(&str, AttrType)> = fields.iter().map(|(n, t)| (*n, *t)).collect();
        if out.insert(stream.to_string(), Schema::of(&pairs)).is_some() {
            return Err(err("duplicate stream"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_streams_comments_and_blanks() {
        let cat = parse_catalog(
            "# auctions\n\nOpenAuction(itemID INT, start_price FLOAT)\n\
             Tags(name STRING, hot BOOL)\n",
        )
        .unwrap();
        assert_eq!(cat.len(), 2);
        let oa = &cat["OpenAuction"];
        assert_eq!(oa.field("start_price").unwrap().ty, AttrType::Float);
        assert_eq!(cat["Tags"].field("hot").unwrap().ty, AttrType::Bool);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_catalog("NoParens INT").is_err());
        assert!(parse_catalog("S(a)").is_err());
        assert!(parse_catalog("S(a WIBBLE)").is_err());
        assert!(parse_catalog("S(a INT) trailing").is_err());
        assert!(parse_catalog("(a INT)").is_err());
        assert!(parse_catalog("S(a INT)\nS(b INT)").is_err());
    }
}
