#![forbid(unsafe_code)]
//! `cosmos-lint`: static analysis of continuous queries and CBN profiles.
//!
//! A registered continuous query runs forever; a malformed one fails
//! forever. Where a one-shot SQL query that returns nothing is merely
//! disappointing, a continuous query whose WHERE clause is
//! unsatisfiable, or whose CBN split filter can never match, silently
//! produces an empty result stream for its whole lifetime while still
//! consuming routing state, matcher slots and merge candidates. This
//! crate finds those queries *before* registration:
//!
//! * **Satisfiability** ([`check_query`]): contradictory bounds on one
//!   attribute, empty `BETWEEN`/difference ranges, and — via the shared
//!   Bellman–Ford kernel [`cosmos_cbn::conjunction_unsat`] —
//!   contradictions that only appear when predicates interact (`a ≥ b
//!   AND b ≥ 5 AND a < 5`), plus equality chains that force one
//!   attribute to two values.
//! * **Schema/type checks** ([`check_query_with`]): unknown streams,
//!   unknown or ambiguous attributes, comparisons across incomparable
//!   types.
//! * **Window lints**: joins over `[Unbounded]`, aggregates over
//!   zero-width `[Now]` windows, and one stream under two windows
//!   (which forecloses the paper's Theorem-2 merging).
//! * **Profile lints** ([`check_profile`]): unsatisfiable and subsumed
//!   disjuncts in CBN profiles; [`check_split`] flags members whose
//!   re-tightened split filter would be empty after merging.
//!
//! Findings are [`Diagnostic`]s with stable codes (see [`codes`]),
//! severities, and byte spans into the statement text (threaded from
//! the lexer through [`cosmos_cql::parse_query_spanned`]). The system
//! layer rejects registration on any `Error`-level finding and surfaces
//! `Warning`s; the `cosmos-lint` binary lints `.cql` files offline.

mod catalog;
mod diag;
mod profile;
mod query;

pub use catalog::parse_catalog;
pub use diag::{codes, has_errors, Diagnostic, JsonDiagnostic, Severity};
pub use profile::{check_profile, check_split};
pub use query::{check_query, check_query_with};
