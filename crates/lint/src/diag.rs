//! The diagnostic model: stable codes, severities, and source spans.

use cosmos_cql::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable diagnostic codes.
///
/// Codes are grouped by the hundred: `C00xx` tooling, `C01xx`
/// satisfiability, `C02xx` schema/types, `C03xx` windows, `C04xx`
/// profiles, `C05xx` merge safety. A code's meaning never changes once
/// published; retired codes are not reused.
pub mod codes {
    /// A statement failed to lex or parse (CLI only).
    pub const PARSE: &str = "C0001";
    /// The WHERE clause admits no tuple (contradictory or interacting
    /// constraints).
    pub const UNSAT_WHERE: &str = "C0101";
    /// An equality chain (`a = b AND b = c …`) forces an attribute to
    /// hold two different values at once.
    pub const EQ_CHAIN_CONFLICT: &str = "C0103";
    /// A FROM stream is not registered in the catalog.
    pub const UNKNOWN_STREAM: &str = "C0201";
    /// An attribute reference names no attribute of the bound streams,
    /// an unknown binding, or is ambiguous across streams.
    pub const UNKNOWN_ATTR: &str = "C0202";
    /// A comparison between incomparable types (or with `NULL`).
    pub const TYPE_MISMATCH: &str = "C0203";
    /// A multi-stream query joins over an `[Unbounded]` window.
    pub const UNBOUNDED_JOIN: &str = "C0301";
    /// An aggregate runs over a zero-width `[Now]` window.
    pub const ZERO_WIDTH_AGG: &str = "C0302";
    /// One stream appears under different windows, foreclosing the
    /// paper's Theorem-2 merging (which needs equal per-stream windows).
    pub const WINDOW_MISMATCH: &str = "C0303";
    /// A profile disjunct is subsumed by another disjunct (redundant).
    pub const REDUNDANT_DISJUNCT: &str = "C0401";
    /// A profile disjunct is unsatisfiable and can never match.
    pub const UNSAT_DISJUNCT: &str = "C0402";
    /// A member's re-tightened split filter is unsatisfiable: after
    /// merging, its result stream would always be empty.
    pub const UNSAT_SPLIT_FILTER: &str = "C0501";

    // `D` codes belong to `cosmos-detlint` (crates/det), the workspace
    // determinism lint. They live in this registry so every COSMOS
    // static tool draws codes from one table: `D00xx` tooling, `D01xx`
    // unordered iteration into ordered sinks, `D02xx` wall clock,
    // `D03xx` ambient randomness, `D04xx` unmanaged concurrency,
    // `D05xx` non-compensated float accumulation.

    /// A source file could not be read (detlint CLI only).
    pub const DET_IO: &str = "D0001";
    /// A `det-allowlist.toml` entry matched no finding this run: the
    /// suppression is stale and must be deleted or its `path`/`pattern`
    /// updated.
    pub const DET_STALE_ALLOW: &str = "D0002";
    /// `HashMap`/`HashSet` iteration in a module that exports into a
    /// digest/snapshot/serde sink: iteration order is seeded per
    /// process, so anything it feeds diverges across replays.
    pub const DET_HASH_ITER: &str = "D0101";
    /// `Instant::now`/`SystemTime::now` outside the allowlist: wall
    /// clock leaks into logic that the replay contract requires to be a
    /// pure function of the input stream (the metrics hub is clocked by
    /// tuple timestamps for exactly this reason).
    pub const DET_WALL_CLOCK: &str = "D0201";
    /// Unseeded or ambient randomness (`rand::thread_rng`,
    /// `RandomState`): per-process entropy that no seed replays.
    pub const DET_AMBIENT_RNG: &str = "D0301";
    /// Thread spawning or nondeterministic channel receive
    /// (`try_recv`/`recv_timeout`/select) outside `core/src/parallel.rs`,
    /// the one module whose interleavings the detcheck model verifies.
    pub const DET_UNMANAGED_CONC: &str = "D0401";
    /// Bare `f64 +=`/`-=` accumulation in a module that feeds oracles:
    /// association-order drift breaks digest equality; use the
    /// Kahan–Neumaier helper (`cosmos_types::NeumaierSum`) instead.
    pub const DET_BARE_F64_ACC: &str = "D0501";
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational context attached to another finding.
    Note,
    /// Suspicious but legal; registration proceeds.
    Warning,
    /// Definitely wrong; registration is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding from a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code from [`codes`].
    pub code: &'static str,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Byte span into the source statement, when one exists (profile
    /// lints have no source text to point into).
    pub span: Option<Span>,
}

impl Diagnostic {
    /// An [`Severity::Error`]-level finding.
    pub fn error(code: &'static str, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span,
        }
    }

    /// A [`Severity::Warning`]-level finding.
    pub fn warning(code: &'static str, message: impl Into<String>, span: Option<Span>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            span,
        }
    }

    /// Compact one-line form, `severity[code]: message`.
    pub fn headline(&self) -> String {
        format!("{}[{}]: {}", self.severity, self.code, self.message)
    }

    /// Render against the source text, rustc-style: the headline, then
    /// the offending line with a caret run under the span.
    pub fn render(&self, src: &str) -> String {
        let mut out = self.headline();
        let Some(span) = self.span else {
            return out;
        };
        let start = span.start.min(src.len());
        let line_no = src[..start].bytes().filter(|&b| b == b'\n').count() + 1;
        let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
        let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
        let line = &src[line_start..line_end];
        let col = start - line_start + 1;
        let width = span.end.min(line_end).saturating_sub(start).max(1);
        out.push_str(&format!(
            "\n  --> {line_no}:{col}\n   | {line}\n   | {}{}",
            " ".repeat(col - 1),
            "^".repeat(width)
        ));
        out
    }
}

/// Whether any finding is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// The machine-readable diagnostic form shared by every COSMOS static
/// tool: `cosmos-lint` (`C` codes), `cosmos-verify` (`V` codes),
/// `cosmos-bound` (`B` codes), and `cosmos-detlint` (`D` codes) all
/// emit this one shape under `--json`, so downstream tooling parses a
/// single format regardless of which analyzer produced the finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JsonDiagnostic {
    /// Stable diagnostic code (`C…`, `V…`, `B…`, or `D…`).
    pub code: String,
    /// `"error"`, `"warning"`, or `"note"`.
    pub severity: String,
    /// Human-readable explanation.
    pub message: String,
    /// Byte span `(start, end)` into the source statement; `null` when
    /// the finding has no source text to point into.
    pub span: Option<(usize, usize)>,
}

impl From<&Diagnostic> for JsonDiagnostic {
    fn from(d: &Diagnostic) -> JsonDiagnostic {
        JsonDiagnostic {
            code: d.code.to_string(),
            severity: d.severity.to_string(),
            message: d.message.clone(),
            span: d.span.map(|s| (s.start, s.end)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_ordering_and_display() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Note);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn render_underlines_the_span() {
        let src = "SELECT a FROM S [Now] WHERE a > 5";
        let d = Diagnostic::error(codes::UNSAT_WHERE, "boom", Some(Span::new(28, 33)));
        let r = d.render(src);
        assert!(r.starts_with("error[C0101]: boom"), "{r}");
        assert!(r.contains("--> 1:29"), "{r}");
        assert!(r.contains("^^^^^"), "{r}");
    }

    #[test]
    fn render_without_span_is_just_the_headline() {
        let d = Diagnostic::warning(codes::UNSAT_DISJUNCT, "dead disjunct", None);
        assert_eq!(d.render("whatever"), "warning[C0402]: dead disjunct");
    }

    #[test]
    fn json_form_round_trips_and_elides_missing_spans() {
        let d = Diagnostic::error(codes::UNSAT_WHERE, "boom", Some(Span::new(3, 7)));
        let j = serde_json::to_string(&JsonDiagnostic::from(&d)).unwrap();
        assert!(j.contains("\"code\":\"C0101\""), "{j}");
        assert!(j.contains("\"span\":[3,7]"), "{j}");
        let back: JsonDiagnostic = serde_json::from_str(&j).unwrap();
        assert_eq!(back, JsonDiagnostic::from(&d));
        let spanless = Diagnostic::warning(codes::UNSAT_DISJUNCT, "dead", None);
        let j = serde_json::to_string(&JsonDiagnostic::from(&spanless)).unwrap();
        assert!(j.contains("\"span\":null"), "{j}");
    }

    #[test]
    fn has_errors_ignores_warnings() {
        let w = Diagnostic::warning(codes::UNBOUNDED_JOIN, "w", None);
        let e = Diagnostic::error(codes::UNKNOWN_STREAM, "e", None);
        assert!(!has_errors(std::slice::from_ref(&w)));
        assert!(has_errors(&[w, e]));
    }
}
