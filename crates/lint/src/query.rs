//! Lints over one parsed continuous query.
//!
//! [`check_query_with`] runs every check against a stream catalog;
//! [`check_query`] runs the catalog-free subset (the CLI without
//! `--schemas`, where attribute resolution falls back to the textual
//! names, which is conservative: constraints on what might be the same
//! attribute under two spellings are simply not combined).

use crate::diag::{codes, Diagnostic};
use cosmos_cbn::{conjunction_unsat, AttrConstraint, Conjunction, DiffRange};
use cosmos_cql::{AttrRef, CmpOp, Operand, Predicate, SelectItem, Span, SpannedQuery, WindowSpec};
use cosmos_types::{AttrType, Schema, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Run the catalog-free lints (satisfiability, equality chains, windows).
pub fn check_query(sq: &SpannedQuery) -> Vec<Diagnostic> {
    Checker::new(sq, None::<fn(&str) -> Option<Schema>>).run()
}

/// Run every lint, resolving streams and attributes through `catalog`.
pub fn check_query_with<F>(sq: &SpannedQuery, catalog: F) -> Vec<Diagnostic>
where
    F: Fn(&str) -> Option<Schema>,
{
    Checker::new(sq, Some(catalog)).run()
}

/// One FROM entry: how predicates name it and what it contains.
struct Binding {
    /// The name predicates use: the alias if given, else the stream name.
    name: String,
    stream: String,
    schema: Option<Schema>,
}

struct Checker<'a> {
    sq: &'a SpannedQuery,
    bindings: Vec<Binding>,
    have_catalog: bool,
    out: Vec<Diagnostic>,
}

impl<'a> Checker<'a> {
    fn new<F>(sq: &'a SpannedQuery, catalog: Option<F>) -> Self
    where
        F: Fn(&str) -> Option<Schema>,
    {
        let mut out = Vec::new();
        let mut bindings = Vec::new();
        for (i, sr) in sq.query.from.iter().enumerate() {
            let schema = match &catalog {
                Some(f) => {
                    let s = f(&sr.stream);
                    if s.is_none() {
                        out.push(Diagnostic::error(
                            codes::UNKNOWN_STREAM,
                            format!("unknown stream '{}'", sr.stream),
                            Some(sq.spans.from[i]),
                        ));
                    }
                    s
                }
                None => None,
            };
            bindings.push(Binding {
                name: sr.alias.clone().unwrap_or_else(|| sr.stream.clone()),
                stream: sr.stream.clone(),
                schema,
            });
        }
        Checker {
            sq,
            bindings,
            have_catalog: catalog.is_some(),
            out,
        }
    }

    fn run(mut self) -> Vec<Diagnostic> {
        self.check_attr_refs();
        self.check_predicate_types();
        let had_unsat = self.check_satisfiability();
        if !had_unsat {
            self.check_equality_chains();
        }
        self.check_windows();
        self.out
    }

    /// Canonical key for an attribute plus its type when resolvable.
    ///
    /// Resolution failures (unknown binding/attribute, ambiguity) emit
    /// `C0202` at `span` and fall back to the textual name, so later
    /// checks still run (conservatively uncombined).
    fn resolve(&mut self, attr: &AttrRef, span: Span) -> (String, Option<AttrType>) {
        match &attr.qualifier {
            Some(qual) => match self.bindings.iter().find(|b| b.name == *qual) {
                None => {
                    self.out.push(Diagnostic::error(
                        codes::UNKNOWN_ATTR,
                        format!("unknown stream binding '{qual}' in '{attr}'"),
                        Some(span),
                    ));
                    (attr.to_string(), None)
                }
                Some(b) => {
                    let field = b.schema.as_ref().and_then(|s| s.field(&attr.name));
                    if b.schema.is_some() && field.is_none() {
                        self.out.push(Diagnostic::error(
                            codes::UNKNOWN_ATTR,
                            format!("stream '{}' has no attribute '{}'", b.stream, attr.name),
                            Some(span),
                        ));
                    }
                    (format!("{}.{}", b.name, attr.name), field.map(|f| f.ty))
                }
            },
            None => {
                // Bare names can only be resolved when every schema is
                // known; otherwise the missing schema could hold it.
                if !self.have_catalog || self.bindings.iter().any(|b| b.schema.is_none()) {
                    return (attr.name.clone(), None);
                }
                let hits: Vec<&Binding> = self
                    .bindings
                    .iter()
                    .filter(|b| b.schema.as_ref().is_some_and(|s| s.contains(&attr.name)))
                    .collect();
                match hits[..] {
                    [] => {
                        self.out.push(Diagnostic::error(
                            codes::UNKNOWN_ATTR,
                            format!("no stream in FROM has an attribute '{}'", attr.name),
                            Some(span),
                        ));
                        (attr.name.clone(), None)
                    }
                    [b] => (
                        format!("{}.{}", b.name, attr.name),
                        b.schema
                            .as_ref()
                            .and_then(|s| s.field(&attr.name))
                            .map(|f| f.ty),
                    ),
                    _ => {
                        let names: Vec<&str> = hits.iter().map(|b| b.stream.as_str()).collect();
                        self.out.push(Diagnostic::error(
                            codes::UNKNOWN_ATTR,
                            format!(
                                "attribute '{}' is ambiguous (found in {})",
                                attr.name,
                                names.join(", ")
                            ),
                            Some(span),
                        ));
                        (attr.name.clone(), None)
                    }
                }
            }
        }
    }

    /// C0202 over the SELECT list and GROUP BY (predicates are resolved
    /// again where their constraints are collected).
    fn check_attr_refs(&mut self) {
        let q = &self.sq.query;
        let spans = self.sq.spans.clone();
        for (item, &span) in q.select.iter().zip(&spans.select) {
            match item {
                SelectItem::Star => {}
                SelectItem::QualifiedStar(qual) => {
                    if !self.bindings.iter().any(|b| b.name == *qual) {
                        self.out.push(Diagnostic::error(
                            codes::UNKNOWN_ATTR,
                            format!("unknown stream binding '{qual}' in '{qual}.*'"),
                            Some(span),
                        ));
                    }
                }
                SelectItem::Attr(a) => {
                    self.resolve(a, span);
                }
                SelectItem::Agg { arg, .. } => {
                    if let Some(a) = arg {
                        self.resolve(a, span);
                    }
                }
            }
        }
        for (a, &span) in q.group_by.iter().zip(&spans.group_by) {
            self.resolve(a, span);
        }
    }

    /// C0203: comparisons whose operand types can never be compared.
    fn check_predicate_types(&mut self) {
        let q = &self.sq.query;
        let spans = self.sq.spans.clone();
        for (p, &span) in q.predicates.iter().zip(&spans.predicates) {
            match p {
                Predicate::Cmp { left, op: _, right } => match (left, right) {
                    (Operand::Attr(a), Operand::Const(v))
                    | (Operand::Const(v), Operand::Attr(a)) => {
                        let (_, ty) = self.resolve(a, span);
                        self.check_attr_const(a, ty, v, span);
                    }
                    (Operand::Attr(a), Operand::Attr(b)) => {
                        let (_, ta) = self.resolve(a, span);
                        let (_, tb) = self.resolve(b, span);
                        if let (Some(ta), Some(tb)) = (ta, tb) {
                            if ta != tb && !(ta.is_numeric() && tb.is_numeric()) {
                                self.out.push(Diagnostic::error(
                                    codes::TYPE_MISMATCH,
                                    format!("cannot compare '{a}' ({ta}) with '{b}' ({tb})"),
                                    Some(span),
                                ));
                            }
                        }
                    }
                    (Operand::Const(x), Operand::Const(y)) => {
                        if x.partial_cmp_coerce(y).is_none() {
                            self.out.push(Diagnostic::error(
                                codes::TYPE_MISMATCH,
                                format!("cannot compare constants {x} and {y}"),
                                Some(span),
                            ));
                        }
                    }
                },
                Predicate::Between { attr, lo, hi } => {
                    let (_, ty) = self.resolve(attr, span);
                    self.check_attr_const(attr, ty, lo, span);
                    self.check_attr_const(attr, ty, hi, span);
                }
            }
        }
    }

    fn check_attr_const(&mut self, attr: &AttrRef, ty: Option<AttrType>, v: &Value, span: Span) {
        if matches!(v, Value::Null) {
            self.out.push(Diagnostic::error(
                codes::TYPE_MISMATCH,
                format!("comparison of '{attr}' with NULL never holds"),
                Some(span),
            ));
            return;
        }
        let Some(ty) = ty else { return };
        let vt = match v {
            Value::Bool(_) => AttrType::Bool,
            Value::Int(_) => AttrType::Int,
            Value::Float(_) => AttrType::Float,
            Value::Str(_) => AttrType::Str,
            Value::Null => unreachable!(),
        };
        if vt != ty && !(vt.is_numeric() && ty.is_numeric()) {
            self.out.push(Diagnostic::error(
                codes::TYPE_MISMATCH,
                format!("cannot compare '{attr}' ({ty}) with {v} ({vt})"),
                Some(span),
            ));
        }
    }

    /// Translate the WHERE clause into one [`Conjunction`] over canonical
    /// attribute keys, remembering which predicates touch which keys.
    ///
    /// Strict attribute-difference bounds (`a < b`) are widened to their
    /// closed forms ([`DiffRange`] is closed), which only loosens the
    /// conjunction — sound for unsat detection.
    fn collect_conjunction(&mut self) -> (Conjunction, Vec<BTreeSet<String>>) {
        let q = self.sq.query.clone();
        let spans = self.sq.spans.clone();
        let mut conj = Conjunction::always();
        let mut touched: Vec<BTreeSet<String>> = Vec::with_capacity(q.predicates.len());
        for (p, &span) in q.predicates.iter().zip(&spans.predicates) {
            let mut keys = BTreeSet::new();
            match p {
                Predicate::Between { attr, lo, hi } => {
                    let (key, _) = self.resolve(attr, span);
                    conj.between(&key, lo.clone(), hi.clone());
                    keys.insert(key);
                }
                Predicate::Cmp { left, op, right } => match (left, right) {
                    (Operand::Attr(a), Operand::Const(v)) => {
                        let (key, _) = self.resolve(a, span);
                        apply_bound(&mut conj, &key, *op, v);
                        keys.insert(key);
                    }
                    (Operand::Const(v), Operand::Attr(a)) => {
                        let (key, _) = self.resolve(a, span);
                        apply_bound(&mut conj, &key, op.flipped(), v);
                        keys.insert(key);
                    }
                    (Operand::Attr(a), Operand::Attr(b)) => {
                        let (ka, _) = self.resolve(a, span);
                        let (kb, _) = self.resolve(b, span);
                        if ka != kb {
                            let range = match op {
                                CmpOp::Eq => Some(DiffRange::new(0.0, 0.0)),
                                CmpOp::Le | CmpOp::Lt => {
                                    Some(DiffRange::new(f64::NEG_INFINITY, 0.0))
                                }
                                CmpOp::Ge | CmpOp::Gt => Some(DiffRange::new(0.0, f64::INFINITY)),
                                CmpOp::Ne => None,
                            };
                            if let Some(r) = range {
                                conj.diff(&ka, &kb, r);
                                keys.insert(ka);
                                keys.insert(kb);
                            }
                        }
                    }
                    (Operand::Const(x), Operand::Const(y)) => {
                        // A decidably-false constant predicate empties the
                        // whole clause on its own.
                        if let Some(ord) = x.partial_cmp_coerce(y) {
                            if !op.eval(ord) {
                                self.out.push(Diagnostic::error(
                                    codes::UNSAT_WHERE,
                                    format!("predicate '{x} {op} {y}' is always false"),
                                    Some(span),
                                ));
                            }
                        }
                    }
                },
            }
            touched.push(keys);
        }
        (conj, touched)
    }

    /// The span covering every predicate whose key set intersects `keys`.
    fn span_of_keys(&self, touched: &[BTreeSet<String>], keys: &[&str]) -> Option<Span> {
        let spans = &self.sq.spans.predicates;
        touched
            .iter()
            .zip(spans)
            .filter(|(t, _)| keys.iter().any(|k| t.contains(*k)))
            .map(|(_, &s)| s)
            .reduce(Span::join)
    }

    /// C0101: the WHERE clause admits no tuple.
    ///
    /// Reported at the tightest defensible span: the predicates on one
    /// attribute when its own bounds are contradictory, the predicates on
    /// a pair when their difference range is empty, and the whole clause
    /// when only the Bellman–Ford kernel sees the contradiction.
    fn check_satisfiability(&mut self) -> bool {
        let before = self.out.len();
        let (conj, touched) = self.collect_conjunction();
        let mut shallow = false;
        for (attr, c) in conj.attr_constraints() {
            if c.is_unsat() {
                shallow = true;
                let span = self.span_of_keys(&touched, &[attr]);
                self.out.push(Diagnostic::error(
                    codes::UNSAT_WHERE,
                    format!("contradictory constraints on '{attr}': no value satisfies {c}"),
                    span,
                ));
            }
        }
        for (a, b, r) in conj.diff_constraints() {
            if r.is_empty() {
                shallow = true;
                let span = self.span_of_keys(&touched, &[a, b]);
                self.out.push(Diagnostic::error(
                    codes::UNSAT_WHERE,
                    format!(
                        "contradictory constraints on '{a} − {b}': the difference range is empty"
                    ),
                    span,
                ));
            }
        }
        if !shallow && conjunction_unsat(&conj) {
            let span = self.sq.spans.predicates.iter().copied().reduce(Span::join);
            self.out.push(Diagnostic::error(
                codes::UNSAT_WHERE,
                "WHERE clause is unsatisfiable: the predicates interact to exclude every tuple"
                    .to_string(),
                span,
            ));
        }
        self.out.len() > before
    }

    /// C0103: equality chains forcing one attribute to two values.
    ///
    /// Works where the numeric kernel cannot: `a = 'x' AND b = 'y' AND
    /// a = b` has no numeric bounds, but the union-find over `=` joins
    /// merges the per-attribute constraints, and the AND of two distinct
    /// points is empty for any value type.
    fn check_equality_chains(&mut self) {
        let (conj, touched) = self.collect_conjunction();
        // Union-find over canonical keys joined by equality predicates.
        let mut parent: BTreeMap<String, String> = BTreeMap::new();
        fn root(parent: &mut BTreeMap<String, String>, k: &str) -> String {
            let p = parent.get(k).cloned().unwrap_or_else(|| k.to_string());
            if p == k {
                return p;
            }
            let r = root(parent, &p);
            parent.insert(k.to_string(), r.clone());
            r
        }
        for (a, b, r) in conj.diff_constraints() {
            if r.lo == 0.0 && r.hi == 0.0 {
                let (ra, rb) = (root(&mut parent, a), root(&mut parent, b));
                if ra != rb {
                    parent.insert(ra, rb);
                }
            }
        }
        let mut classes: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let keys: BTreeSet<String> = conj.referenced_attrs();
        for k in &keys {
            classes
                .entry(root(&mut parent, k))
                .or_default()
                .push(k.clone());
        }
        for members in classes.values() {
            if members.len() < 2 {
                continue;
            }
            let merged = members.iter().fold(AttrConstraint::any(), |acc, m| {
                acc.and(&conj.constraint_for(m))
            });
            if merged.is_unsat() {
                let refs: Vec<&str> = members.iter().map(String::as_str).collect();
                let span = self.span_of_keys(&touched, &refs);
                self.out.push(Diagnostic::error(
                    codes::EQ_CHAIN_CONFLICT,
                    format!(
                        "equality chain over {} forces conflicting values",
                        members.join(" = ")
                    ),
                    span,
                ));
            }
        }
    }

    /// C0301 / C0302 / C0303: window hygiene.
    fn check_windows(&mut self) {
        let q = &self.sq.query;
        let spans = &self.sq.spans;
        if q.from.len() > 1 {
            for (sr, &wspan) in q.from.iter().zip(&spans.windows) {
                if sr.window == WindowSpec::Unbounded {
                    self.out.push(Diagnostic::warning(
                        codes::UNBOUNDED_JOIN,
                        format!(
                            "join over '{}' with an [Unbounded] window retains the stream's \
                             entire history; join state grows without bound",
                            sr.stream
                        ),
                        Some(wspan),
                    ));
                }
            }
        }
        if q.is_aggregate() {
            for (sr, &wspan) in q.from.iter().zip(&spans.windows) {
                if sr.window == WindowSpec::Now {
                    self.out.push(Diagnostic::warning(
                        codes::ZERO_WIDTH_AGG,
                        format!(
                            "aggregate over '{}' with a zero-width [Now] window only ever \
                             sees tuples sharing one timestamp",
                            sr.stream
                        ),
                        Some(wspan),
                    ));
                }
            }
        }
        for i in 0..q.from.len() {
            for j in (i + 1)..q.from.len() {
                if q.from[i].stream == q.from[j].stream && q.from[i].window != q.from[j].window {
                    self.out.push(Diagnostic::warning(
                        codes::WINDOW_MISMATCH,
                        format!(
                            "stream '{}' appears under two different windows; per-stream \
                             windows must match for Theorem-2 aggregate merging to apply",
                            q.from[i].stream
                        ),
                        Some(spans.windows[i].join(spans.windows[j])),
                    ));
                }
            }
        }
    }
}

/// AND one `attr op const` bound onto the conjunction.
fn apply_bound(conj: &mut Conjunction, key: &str, op: CmpOp, v: &Value) {
    match op {
        CmpOp::Eq => conj.equals(key, v.clone()),
        CmpOp::Ne => conj.excludes(key, v.clone()),
        CmpOp::Lt => conj.upper(key, v.clone(), false),
        CmpOp::Le => conj.upper(key, v.clone(), true),
        CmpOp::Gt => conj.lower(key, v.clone(), false),
        CmpOp::Ge => conj.lower(key, v.clone(), true),
    };
}
