//! Lints over CBN profiles and over the merge machinery's split filters.

use crate::diag::{codes, Diagnostic};
use cosmos_cbn::{conjunction_unsat, Profile};
use cosmos_query::merge::retighten_profile;
use cosmos_spe::analyze::AnalyzedQuery;
use cosmos_types::StreamName;

/// Check a profile's disjuncts for dead (C0402) and redundant (C0401)
/// filters. Profiles carry no source text, so findings have no span.
pub fn check_profile(p: &Profile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (stream, entry) in p.iter() {
        let dead: Vec<bool> = entry.filters.iter().map(conjunction_unsat).collect();
        for (i, filter) in entry.filters.iter().enumerate() {
            if dead[i] {
                out.push(Diagnostic::warning(
                    codes::UNSAT_DISJUNCT,
                    format!(
                        "disjunct #{i} of the profile entry for stream '{stream}' is \
                         unsatisfiable and can never match: {filter}"
                    ),
                    None,
                ));
                continue;
            }
            // A live disjunct is redundant when another live disjunct
            // admits everything it admits. Of two equivalent disjuncts
            // only the later one is flagged.
            let subsumed_by = entry.filters.iter().enumerate().find(|&(j, other)| {
                j != i && !dead[j] && filter.implies(other) && (i > j || !other.implies(filter))
            });
            if let Some((j, _)) = subsumed_by {
                out.push(Diagnostic::warning(
                    codes::REDUNDANT_DISJUNCT,
                    format!(
                        "disjunct #{i} of the profile entry for stream '{stream}' is \
                         subsumed by disjunct #{j} and is redundant: {filter}"
                    ),
                    None,
                ));
            }
        }
    }
    out
}

/// Merge-safety check (C0501): would splitting `member`'s results out of
/// the representative's stream require an unsatisfiable filter?
///
/// Wraps [`retighten_profile`], which refuses to build a provably-empty
/// split filter; the refusal is surfaced here as a lint finding.
pub fn check_split(
    member: &AnalyzedQuery,
    rep: &AnalyzedQuery,
    rep_stream: &StreamName,
) -> Vec<Diagnostic> {
    match retighten_profile(member, rep, rep_stream) {
        Ok(profile) => check_profile(&profile),
        Err(e) if e.message().contains("unsatisfiable") => vec![Diagnostic::warning(
            codes::UNSAT_SPLIT_FILTER,
            format!(
                "merging this query would fail at split time: {}",
                e.message()
            ),
            None,
        )],
        // Other failures (e.g. no correspondence) mean the pair is not
        // mergeable in the first place — nothing for a lint to flag.
        Err(_) => Vec::new(),
    }
}
