//! One dedicated test per diagnostic code, each asserting both the
//! finding and (where spans exist) the exact source text the span
//! underlines.

use cosmos_cbn::{Conjunction, Profile, Projection};
use cosmos_cql::parse_query_spanned;
use cosmos_lint::{
    check_profile, check_query, check_query_with, check_split, codes, has_errors, Severity,
};
use cosmos_query::merge::merge;
use cosmos_spe::analyze::AnalyzedQuery;
use cosmos_types::{AttrType, Schema, StreamName};

fn catalog(name: &str) -> Option<Schema> {
    match name {
        "OpenAuction" => Some(Schema::of(&[
            ("itemID", AttrType::Int),
            ("sellerID", AttrType::Int),
            ("start_price", AttrType::Float),
            ("timestamp", AttrType::Int),
        ])),
        "ClosedAuction" => Some(Schema::of(&[
            ("itemID", AttrType::Int),
            ("buyerID", AttrType::Int),
            ("timestamp", AttrType::Int),
        ])),
        "Sensors" => Some(Schema::of(&[
            ("station", AttrType::Int),
            ("temperature", AttrType::Float),
            ("tag", AttrType::Str),
            ("timestamp", AttrType::Int),
        ])),
        _ => None,
    }
}

/// Lint `src` with the catalog and return (diagnostics, span texts).
fn lint(src: &str) -> Vec<(String, Severity, Option<String>)> {
    let sq = parse_query_spanned(src).unwrap();
    check_query_with(&sq, catalog)
        .into_iter()
        .map(|d| {
            (
                d.code.to_string(),
                d.severity,
                d.span.map(|s| s.text(src).to_string()),
            )
        })
        .collect()
}

#[test]
fn clean_queries_produce_no_diagnostics() {
    for src in [
        "SELECT O.* FROM OpenAuction [Range 3 Hour] O, ClosedAuction [Now] C \
         WHERE O.itemID = C.itemID",
        "SELECT station, AVG(temperature) FROM Sensors [Range 10 Minute] GROUP BY station",
        "SELECT station FROM Sensors [Now] WHERE temperature BETWEEN 0.0 AND 20.0",
    ] {
        assert!(lint(src).is_empty(), "unexpected findings for {src}");
    }
}

#[test]
fn c0101_contradictory_bounds_on_one_attribute() {
    let src = "SELECT station FROM Sensors [Now] \
               WHERE temperature > 5.0 AND tag = 'a' AND temperature < 3.0";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let (code, sev, span) = &diags[0];
    assert_eq!(code, codes::UNSAT_WHERE);
    assert_eq!(*sev, Severity::Error);
    // The span covers exactly the predicates on `temperature`, including
    // the unrelated predicate sitting between them.
    assert_eq!(
        span.as_deref(),
        Some("temperature > 5.0 AND tag = 'a' AND temperature < 3.0")
    );
}

#[test]
fn c0101_empty_between_range() {
    let src = "SELECT station FROM Sensors [Now] WHERE temperature BETWEEN 9.0 AND 1.0";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].0, codes::UNSAT_WHERE);
    assert_eq!(
        diags[0].2.as_deref(),
        Some("temperature BETWEEN 9.0 AND 1.0")
    );
}

#[test]
fn c0101_deep_unsat_needs_the_difference_kernel() {
    // Each predicate alone is satisfiable; only the Bellman–Ford kernel
    // sees the cycle temperature ≥ timestamp ≥ 30 > temperature.
    let src = "SELECT station FROM Sensors [Now] \
               WHERE temperature >= timestamp AND timestamp >= 30.0 AND temperature < 30.0";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let (code, sev, span) = &diags[0];
    assert_eq!(code, codes::UNSAT_WHERE);
    assert_eq!(*sev, Severity::Error);
    assert_eq!(
        span.as_deref(),
        Some("temperature >= timestamp AND timestamp >= 30.0 AND temperature < 30.0")
    );
}

#[test]
fn c0101_always_false_constant_predicate() {
    let src = "SELECT station FROM Sensors [Now] WHERE 1 = 2";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].0, codes::UNSAT_WHERE);
    assert_eq!(diags[0].2.as_deref(), Some("1 = 2"));
}

#[test]
fn c0103_string_equality_chain_conflict() {
    // No numeric bounds anywhere, so the difference kernel is blind;
    // the union-find over `=` joins must catch it.
    let src = "SELECT O.itemID FROM OpenAuction [Now] O, ClosedAuction [Now] C \
               WHERE O.itemID = 3 AND C.itemID = 4 AND O.itemID = C.itemID";
    // itemID is Int here, which C0101 also sees — use a schema-free parse
    // with string constants to isolate C0103.
    let src_str = "SELECT a FROM S [Now], T [Now] \
                   WHERE S.x = 'red' AND T.y = 'blue' AND S.x = T.y";
    let sq = parse_query_spanned(src_str).unwrap();
    let diags = check_query(&sq);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, codes::EQ_CHAIN_CONFLICT);
    assert_eq!(diags[0].severity, Severity::Error);
    assert_eq!(
        diags[0]
            .span
            .map(|s| s.text(src_str).to_string())
            .as_deref(),
        Some("S.x = 'red' AND T.y = 'blue' AND S.x = T.y")
    );
    // The numeric variant is caught by C0101 instead (and only once).
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].0, codes::UNSAT_WHERE);
}

#[test]
fn c0201_unknown_stream() {
    let src = "SELECT x FROM Nonsense [Now]";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let (code, sev, span) = &diags[0];
    assert_eq!(code, codes::UNKNOWN_STREAM);
    assert_eq!(*sev, Severity::Error);
    assert_eq!(span.as_deref(), Some("Nonsense [Now]"));
}

#[test]
fn c0202_unknown_and_ambiguous_attributes() {
    let src = "SELECT wibble FROM Sensors [Now]";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].0, codes::UNKNOWN_ATTR);
    assert_eq!(diags[0].2.as_deref(), Some("wibble"));

    // Unknown binding in a qualified reference.
    let src = "SELECT Q.station FROM Sensors [Now] S";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].0, codes::UNKNOWN_ATTR);
    assert_eq!(diags[0].2.as_deref(), Some("Q.station"));

    // `timestamp` lives in both streams: a bare reference is ambiguous.
    let src = "SELECT timestamp FROM OpenAuction [Now] O, ClosedAuction [Now] C";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].0, codes::UNKNOWN_ATTR);
    assert_eq!(diags[0].2.as_deref(), Some("timestamp"));

    // Without a catalog none of these can fire.
    let sq = parse_query_spanned("SELECT wibble FROM Sensors [Now]").unwrap();
    assert!(check_query(&sq).is_empty());
}

#[test]
fn c0203_type_mismatches() {
    // String attribute against a numeric constant.
    let src = "SELECT station FROM Sensors [Now] WHERE tag > 5";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let (code, sev, span) = &diags[0];
    assert_eq!(code, codes::TYPE_MISMATCH);
    assert_eq!(*sev, Severity::Error);
    assert_eq!(span.as_deref(), Some("tag > 5"));

    // NULL comparisons never hold, catalog or not.
    let src = "SELECT station FROM Sensors [Now] WHERE station = NULL";
    let diags = lint(src);
    assert!(
        diags.iter().any(|d| d.0 == codes::TYPE_MISMATCH),
        "{diags:?}"
    );

    // Incomparable attribute pair.
    let src = "SELECT station FROM Sensors [Now] WHERE tag = temperature";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].0, codes::TYPE_MISMATCH);

    // Int vs Float is fine.
    let src = "SELECT station FROM Sensors [Now] WHERE temperature > 5 AND station = 2";
    assert!(lint(src).is_empty());
}

#[test]
fn c0301_join_over_unbounded_window() {
    let src = "SELECT O.itemID FROM OpenAuction [Unbounded] O, ClosedAuction [Now] C \
               WHERE O.itemID = C.itemID";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let (code, sev, span) = &diags[0];
    assert_eq!(code, codes::UNBOUNDED_JOIN);
    assert_eq!(*sev, Severity::Warning);
    assert_eq!(span.as_deref(), Some("[Unbounded]"));

    // A single-stream [Unbounded] scan accumulates no join state.
    let src = "SELECT itemID FROM OpenAuction [Unbounded]";
    assert!(lint(src).is_empty());
}

#[test]
fn c0302_aggregate_over_zero_width_window() {
    let src = "SELECT COUNT(*) FROM Sensors [Now]";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let (code, sev, span) = &diags[0];
    assert_eq!(code, codes::ZERO_WIDTH_AGG);
    assert_eq!(*sev, Severity::Warning);
    assert_eq!(span.as_deref(), Some("[Now]"));

    // Non-aggregate [Now] queries are the paper's bread and butter.
    let src = "SELECT station FROM Sensors [Now]";
    assert!(lint(src).is_empty());
}

#[test]
fn c0303_same_stream_under_two_windows() {
    let src = "SELECT A.itemID FROM OpenAuction [Range 1 Hour] A, OpenAuction [Range 2 Hour] B \
               WHERE A.itemID = B.itemID";
    let diags = lint(src);
    assert_eq!(diags.len(), 1, "{diags:?}");
    let (code, sev, span) = &diags[0];
    assert_eq!(code, codes::WINDOW_MISMATCH);
    assert_eq!(*sev, Severity::Warning);
    assert_eq!(
        span.as_deref(),
        Some("[Range 1 Hour] A, OpenAuction [Range 2 Hour]")
    );

    // A self-join under one window is fine.
    let src = "SELECT A.itemID FROM OpenAuction [Range 1 Hour] A, OpenAuction [Range 1 Hour] B \
               WHERE A.itemID = B.itemID";
    assert!(lint(src).is_empty());
}

#[test]
fn c0401_redundant_profile_disjunct() {
    let mut narrow = Conjunction::always();
    narrow.between("price", 10, 20);
    let mut wide = Conjunction::always();
    wide.between("price", 0, 100);
    let mut p = Profile::new();
    p.add_entry(
        "S",
        cosmos_cbn::ProfileEntry {
            projection: Projection::All,
            filters: vec![wide, narrow],
        },
    );
    let diags = check_profile(&p);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, codes::REDUNDANT_DISJUNCT);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(
        diags[0].message.contains("disjunct #1"),
        "{}",
        diags[0].message
    );
    assert!(
        diags[0].message.contains("disjunct #0"),
        "{}",
        diags[0].message
    );
    assert!(!has_errors(&check_profile(&p)));
}

#[test]
fn c0401_identical_disjuncts_flag_only_the_later_one() {
    let mut f = Conjunction::always();
    f.equals("id", 7);
    let mut p = Profile::new();
    p.add_entry(
        "S",
        cosmos_cbn::ProfileEntry {
            projection: Projection::All,
            filters: vec![f.clone(), f],
        },
    );
    let diags = check_profile(&p);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].message.contains("disjunct #1"),
        "{}",
        diags[0].message
    );
}

#[test]
fn c0402_unsat_profile_disjunct() {
    // Deep-unsat through a difference constraint: invisible to the
    // shallow emptiness checks that Profile::union already applies.
    let mut dead = Conjunction::always();
    dead.diff("a", "b", cosmos_cbn::DiffRange::new(0.0, f64::INFINITY))
        .lower("b", 5, true)
        .upper("a", 5, false);
    let mut live = Conjunction::always();
    live.equals("a", 1);
    let mut p = Profile::new();
    p.add_entry(
        "S",
        cosmos_cbn::ProfileEntry {
            projection: Projection::All,
            filters: vec![dead, live],
        },
    );
    let diags = check_profile(&p);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, codes::UNSAT_DISJUNCT);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(
        diags[0].message.contains("disjunct #0"),
        "{}",
        diags[0].message
    );
}

#[test]
fn c0501_unsat_split_filter_after_merging() {
    let q = |text: &str| {
        AnalyzedQuery::analyze(&cosmos_cql::parse_query(text).unwrap(), catalog).unwrap()
    };
    let member = q("SELECT station, temperature, timestamp FROM Sensors [Now] \
                    WHERE temperature >= timestamp AND timestamp >= 30.0 \
                    AND temperature < 30.0");
    let other = q("SELECT station, temperature, timestamp FROM Sensors [Now] \
                   WHERE temperature >= 100.0");
    let rep = merge(&member, &other).unwrap();
    let s = StreamName::from("r");
    let diags = check_split(&member, &rep, &s);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, codes::UNSAT_SPLIT_FILTER);
    assert_eq!(diags[0].severity, Severity::Warning);
    // The healthy member splits cleanly.
    assert!(check_split(&other, &rep, &s).is_empty());
}
