//! A lexer-lite scanner for Rust source.
//!
//! `cosmos-detlint` needs just enough of Rust's lexical structure to
//! walk token streams without being fooled by comments, strings, char
//! literals, or lifetimes — the same hand-rolled, dependency-free style
//! as the CQL lexer (`cosmos_cql::lexer`). It is deliberately *not* a
//! parser: the determinism lints match small token patterns (`name .
//! iter (`, `Instant :: now`, `x += …`) plus a brace-matched notion of
//! `#[cfg(test)]` regions, which is all the D-code heuristics require.
//! The scanner never fails — unknown bytes become punctuation tokens and
//! unterminated literals run to end of file — so the lint can always
//! report on a file it could read.

/// What a token is, as far as the determinism lints care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Numeric literal (never inspected, only skipped).
    Num,
    /// String, raw-string, byte-string, or char literal.
    Lit,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation. `::` and `+=`/`-=` are emitted as single tokens;
    /// everything else is one byte.
    Punct,
}

/// One token: kind plus byte span into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
}

impl Tok {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Tokenize Rust source. Comments and whitespace are dropped; every
/// remaining lexeme becomes exactly one [`Tok`].
pub fn tokenize(src: &str) -> Vec<Tok> {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(src.len() / 6);
    let mut pos = 0usize;
    while pos < bytes.len() {
        let b = bytes[pos];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => pos += 1,
            b'/' if bytes.get(pos + 1) == Some(&b'/') => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'/' if bytes.get(pos + 1) == Some(&b'*') => {
                // Nested block comments, as Rust defines them.
                let mut depth = 1usize;
                pos += 2;
                while pos < bytes.len() && depth > 0 {
                    if bytes[pos] == b'/' && bytes.get(pos + 1) == Some(&b'*') {
                        depth += 1;
                        pos += 2;
                    } else if bytes[pos] == b'*' && bytes.get(pos + 1) == Some(&b'/') {
                        depth -= 1;
                        pos += 2;
                    } else {
                        pos += 1;
                    }
                }
            }
            b'"' => {
                let start = pos;
                pos = skip_string(bytes, pos + 1);
                out.push(Tok {
                    kind: TokKind::Lit,
                    start,
                    end: pos,
                });
            }
            b'r' | b'b' if raw_string_hashes(bytes, pos).is_some() => {
                let start = pos;
                let (body, hashes) = raw_string_hashes(bytes, pos).expect("checked");
                pos = skip_raw_string(bytes, body, hashes);
                out.push(Tok {
                    kind: TokKind::Lit,
                    start,
                    end: pos,
                });
            }
            b'b' if bytes.get(pos + 1) == Some(&b'"') => {
                let start = pos;
                pos = skip_string(bytes, pos + 2);
                out.push(Tok {
                    kind: TokKind::Lit,
                    start,
                    end: pos,
                });
            }
            b'\'' => {
                let start = pos;
                let (kind, end) = char_or_lifetime(src, pos);
                pos = end;
                out.push(Tok { kind, start, end });
            }
            b'0'..=b'9' => {
                let start = pos;
                pos += 1;
                // Digits, underscores, radix/exponent letters, and a
                // fractional point when followed by a digit (so `0..10`
                // stays three tokens).
                while pos < bytes.len() {
                    let c = bytes[pos];
                    let fraction = c == b'.' && bytes.get(pos + 1).is_some_and(u8::is_ascii_digit);
                    if c.is_ascii_alphanumeric() || c == b'_' || fraction {
                        pos += 1;
                    } else {
                        break;
                    }
                }
                out.push(Tok {
                    kind: TokKind::Num,
                    start,
                    end: pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' || c >= 0x80 => {
                let start = pos;
                while pos < bytes.len() && {
                    let c = bytes[pos];
                    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
                } {
                    pos += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident,
                    start,
                    end: pos,
                });
            }
            b':' if bytes.get(pos + 1) == Some(&b':') => {
                out.push(Tok {
                    kind: TokKind::Punct,
                    start: pos,
                    end: pos + 2,
                });
                pos += 2;
            }
            b'+' | b'-' if bytes.get(pos + 1) == Some(&b'=') => {
                out.push(Tok {
                    kind: TokKind::Punct,
                    start: pos,
                    end: pos + 2,
                });
                pos += 2;
            }
            _ => {
                out.push(Tok {
                    kind: TokKind::Punct,
                    start: pos,
                    end: pos + 1,
                });
                pos += 1;
            }
        }
    }
    out
}

/// Skip past a `"`-delimited string body starting *after* the opening
/// quote; returns the position after the closing quote (or EOF).
fn skip_string(bytes: &[u8], mut pos: usize) -> usize {
    while pos < bytes.len() {
        match bytes[pos] {
            b'\\' => pos += 2,
            b'"' => return pos + 1,
            _ => pos += 1,
        }
    }
    pos.min(bytes.len())
}

/// If `pos` starts a raw (byte) string — `r"`, `r#`, `br"`, `br#` —
/// return (position of the opening `"`, number of `#`s).
fn raw_string_hashes(bytes: &[u8], pos: usize) -> Option<(usize, usize)> {
    let mut p = pos;
    if bytes[p] == b'b' {
        p += 1;
    }
    if bytes.get(p) != Some(&b'r') {
        return None;
    }
    p += 1;
    let mut hashes = 0usize;
    while bytes.get(p) == Some(&b'#') {
        hashes += 1;
        p += 1;
    }
    if bytes.get(p) == Some(&b'"') {
        Some((p + 1, hashes))
    } else {
        None
    }
}

/// Skip a raw-string body starting after the opening quote; returns the
/// position after the closing `"###…` run (or EOF).
fn skip_raw_string(bytes: &[u8], mut pos: usize, hashes: usize) -> usize {
    while pos < bytes.len() {
        if bytes[pos] == b'"' {
            let mut h = 0usize;
            while h < hashes && bytes.get(pos + 1 + h) == Some(&b'#') {
                h += 1;
            }
            if h == hashes {
                return pos + 1 + hashes;
            }
        }
        pos += 1;
    }
    pos
}

/// Disambiguate `'a` (lifetime) from `'x'` / `'\n'` (char literal) at a
/// `'` byte. Returns the token kind and end position.
fn char_or_lifetime(src: &str, pos: usize) -> (TokKind, usize) {
    let bytes = src.as_bytes();
    let next = bytes.get(pos + 1).copied();
    // `'\…'` is always a char literal.
    if next == Some(b'\\') {
        let mut p = pos + 2;
        // Escape body runs to the closing quote (covers \n, \x7f, \u{…}).
        while p < bytes.len() && bytes[p] != b'\'' {
            p += 1;
        }
        return (TokKind::Lit, (p + 1).min(bytes.len()));
    }
    // A lifetime is `'` + ident run NOT followed by a closing `'`.
    if next.is_some_and(|c| c.is_ascii_alphabetic() || c == b'_') {
        let mut p = pos + 1;
        while p < bytes.len() && {
            let c = bytes[p];
            c.is_ascii_alphanumeric() || c == b'_'
        } {
            p += 1;
        }
        if bytes.get(p) != Some(&b'\'') {
            return (TokKind::Lifetime, p);
        }
        return (TokKind::Lit, p + 1);
    }
    // `'∀'` and other multibyte char literals: step one char, expect `'`.
    let mut iter = src[pos + 1..].char_indices();
    if let Some((_, c)) = iter.next() {
        let after = pos + 1 + c.len_utf8();
        if bytes.get(after) == Some(&b'\'') {
            return (TokKind::Lit, after + 1);
        }
    }
    (TokKind::Punct, pos + 1)
}

/// Byte ranges of `#[cfg(test)] mod … { … }` bodies and `#[test] fn`
/// bodies: the lints skip findings inside them, because the determinism
/// contract binds production code (tests are free to spawn threads and
/// build hand-rolled interleavings — the router's own concurrency tests
/// do exactly that).
pub fn test_regions(src: &str, toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].text(src) == "#" && i + 1 < toks.len() && toks[i + 1].text(src) == "[" {
            if let Some((is_test_cfg, after_attr)) = parse_attr(src, toks, i + 1) {
                if is_test_cfg {
                    if let Some(end) = skip_item_body(src, toks, after_attr) {
                        out.push((toks[i].start, end));
                        // Findings inside are span-filtered; keep
                        // scanning *after* the region.
                        while i < toks.len() && toks[i].start < end {
                            i += 1;
                        }
                        continue;
                    }
                }
                i = after_attr;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parse an attribute starting at its `[` token. Returns whether it is a
/// test gate (`cfg(test)` at any nesting depth, or bare `test`) and the
/// token index just past the closing `]`.
fn parse_attr(src: &str, toks: &[Tok], lbracket: usize) -> Option<(bool, usize)> {
    let mut depth = 0usize;
    let mut saw_cfg = false;
    let mut saw_test = false;
    let mut bare_test = false;
    let mut j = lbracket;
    while j < toks.len() {
        match toks[j].text(src) {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    return Some(((saw_cfg && saw_test) || bare_test, j + 1));
                }
            }
            "cfg" => saw_cfg = true,
            "test" => {
                saw_test = true;
                // `#[test]` exactly: the only token between brackets.
                if depth == 1 && j == lbracket + 1 && toks.get(j + 1)?.text(src) == "]" {
                    bare_test = true;
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// From the token just past a test attribute, skip any further
/// attributes and doc comments, and if the item is a `mod`/`fn` with a
/// braced body, return the byte offset just past its closing `}`.
fn skip_item_body(src: &str, toks: &[Tok], mut i: usize) -> Option<usize> {
    // Further attributes (e.g. `#[cfg(test)] #[allow(…)] mod t {…}`).
    while i + 1 < toks.len() && toks[i].text(src) == "#" && toks[i + 1].text(src) == "[" {
        let (_, after) = parse_attr(src, toks, i + 1)?;
        i = after;
    }
    match toks.get(i)?.text(src) {
        "mod" | "fn" | "pub" => {}
        // `#[cfg(test)] use …;` and friends gate no body.
        _ => return None,
    }
    // Walk to the opening brace of the item (skipping the signature; a
    // semicolon first means a bodyless declaration).
    let mut j = i;
    let mut depth = 0usize;
    while j < toks.len() {
        match toks[j].text(src) {
            "{" if depth == 0 => {
                // Brace-match the body.
                let mut d = 1usize;
                let mut k = j + 1;
                while k < toks.len() && d > 0 {
                    match toks[k].text(src) {
                        "{" => d += 1,
                        "}" => d -= 1,
                        _ => {}
                    }
                    k += 1;
                }
                return Some(toks.get(k - 1).map_or(src.len(), |t| t.end));
            }
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            ";" if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<&str> {
        tokenize(src).iter().map(|t| t.text(src)).collect()
    }

    #[test]
    fn comments_and_strings_hide_their_contents() {
        let src = concat!(
            "// HashMap in a comment\n",
            "/* Instant::now() /* nested */ still comment */\n",
            "let s = \"thread_rng()\"; let r = r#\"spawn\"#; let c = '\"';\n",
        );
        let toks = texts(src);
        assert!(!toks.contains(&"HashMap"));
        assert!(!toks.contains(&"Instant"));
        assert!(!toks.contains(&"thread_rng"));
        assert!(!toks.contains(&"spawn"));
        assert!(toks.contains(&"let"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { let c = 'x'; x }";
        let toks = tokenize(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 1, "'x' is the one char literal");
    }

    #[test]
    fn compound_tokens_are_single() {
        let src = "a += b; c::d; e -= 1;";
        let toks = texts(src);
        assert!(toks.contains(&"+="));
        assert!(toks.contains(&"::"));
        assert!(toks.contains(&"-="));
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let src = "for i in 0..10 { let x = 1.5e3; let y = 0xff_u8; }";
        let toks = texts(src);
        assert!(toks.contains(&"0"));
        assert!(toks.contains(&"10"));
        assert!(toks.contains(&"1.5e3"));
        assert!(toks.contains(&"0xff_u8"));
    }

    #[test]
    fn cfg_test_mod_bodies_are_regions() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn inner() { spawn(); }\n}\nfn after() {}";
        let toks = tokenize(src);
        let regions = test_regions(src, &toks);
        assert_eq!(regions.len(), 1);
        let (s, e) = regions[0];
        let spawn_at = src.find("spawn").unwrap();
        assert!(s < spawn_at && spawn_at < e);
        let after_at = src.find("fn after").unwrap();
        assert!(after_at >= e);
    }

    #[test]
    fn bare_test_fn_bodies_are_regions_and_cfg_test_use_is_not() {
        let src = "#[cfg(test)]\nuse foo::bar;\n#[test]\nfn t() { thread_rng(); }\nfn live() {}";
        let toks = tokenize(src);
        let regions = test_regions(src, &toks);
        assert_eq!(regions.len(), 1);
        let rng_at = src.find("thread_rng").unwrap();
        assert!(regions[0].0 < rng_at && rng_at < regions[0].1);
        let live_at = src.find("fn live").unwrap();
        assert!(live_at >= regions[0].1);
    }

    #[test]
    fn cfg_all_test_counts_as_gate() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod m { fn f() { spawn(); } }";
        let toks = tokenize(src);
        assert_eq!(test_regions(src, &toks).len(), 1);
    }
}
