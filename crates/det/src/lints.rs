//! The determinism lints: token-pattern detectors over one source file.
//!
//! Each `D` code is a small heuristic over the scanner's token stream
//! (see `scan.rs`), tuned for this workspace rather than for arbitrary
//! Rust. The unifying question is always the replay contract: could
//! this construct make a digest, snapshot, or delivery order differ
//! between two runs over the same input? Findings inside
//! `#[cfg(test)]`/`#[test]` regions are dropped — tests may spawn
//! threads and hand-build interleavings; the contract binds production
//! code.

use crate::scan::{test_regions, tokenize, Tok, TokKind};
use cosmos_cql::Span;
use cosmos_lint::{codes, Diagnostic};

/// One lint finding, located for rendering and allowlist matching.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The underlying diagnostic (code, severity, message, byte span).
    pub diag: Diagnostic,
    /// Workspace-relative path of the file (e.g. `crates/core/src/system.rs`).
    pub path: String,
    /// 1-based line of the span start.
    pub line: usize,
    /// Full text of that line (allowlist `pattern` matches against it).
    pub line_text: String,
}

/// Collection names whose iteration order is seeded per process.
const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

/// Method names that surface iteration order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Idents that mark a file as exporting into an ordered sink: a digest,
/// a cross-process snapshot, or a serde wire format. D0101/D0501 only
/// fire in such files — unordered iteration that never leaves the
/// process (e.g. membership checks) is harmless.
const SINK_NAMES: &[&str] = &[
    "routing_digest",
    "NetworkSnapshot",
    "MetricsSnapshot",
    "to_json",
];

/// Lint one file. `rel_path` is workspace-relative and drives the
/// per-module exemptions (D0401's `core/src/parallel.rs` carve-out).
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Finding> {
    let toks = tokenize(src);
    let skip = test_regions(src, &toks);
    let in_test = |t: &Tok| skip.iter().any(|&(s, e)| t.start >= s && t.start < e);
    let live: Vec<Tok> = toks.iter().copied().filter(|t| !in_test(t)).collect();

    let is_sink_file = live
        .iter()
        .any(|t| t.kind == TokKind::Ident && SINK_NAMES.contains(&t.text(src)))
        || has_serde_impl(src, &live);

    let hash_names = typed_names(src, &live, |ty| HASH_TYPES.contains(&ty));
    let f64_names = typed_names(src, &live, |ty| ty == "f64");

    let mut out = Vec::new();
    let mut push = |code: &'static str, msg: String, tok: &Tok| {
        let span = Span::new(tok.start, tok.end);
        out.push(locate(
            rel_path,
            src,
            Diagnostic::error(code, msg, Some(span)),
        ));
    };

    let txt = |i: usize| live.get(i).map_or("", |t| t.text(src));
    for i in 0..live.len() {
        let t = live[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(src);

        // D0101: `<hash-typed name> . iter/keys/values/…` or a for-loop
        // directly over the map (`for k in <name>` / `for (k, v) in
        // &<name>`), in a file that exports into an ordered sink.
        if is_sink_file && hash_names.iter().any(|n| n == name) {
            if txt(i + 1) == "." && ITER_METHODS.contains(&txt(i + 2)) {
                push(
                    codes::DET_HASH_ITER,
                    format!(
                        "iteration over hash-ordered `{name}` in a module that exports into a \
                         digest/snapshot/serde sink; hash iteration order is seeded per process — \
                         sort before emission or switch to BTreeMap/BTreeSet"
                    ),
                    &t,
                );
            } else if for_loop_target(src, &live, i) {
                push(
                    codes::DET_HASH_ITER,
                    format!(
                        "for-loop over hash-ordered `{name}` in a module that exports into a \
                         digest/snapshot/serde sink; hash iteration order is seeded per process — \
                         sort before emission or switch to BTreeMap/BTreeSet"
                    ),
                    &t,
                );
            }
        }

        // D0201: `Instant::now` / `SystemTime::now`.
        if (name == "Instant" || name == "SystemTime") && txt(i + 1) == "::" && txt(i + 2) == "now"
        {
            push(
                codes::DET_WALL_CLOCK,
                format!(
                    "wall clock `{name}::now` outside the allowlist; replay requires logic to be \
                     a pure function of the input stream (clock the code from tuple timestamps, \
                     or justify the site in det-allowlist.toml)"
                ),
                &t,
            );
        }

        // D0301: ambient randomness.
        if name == "thread_rng" || name == "RandomState" {
            push(
                codes::DET_AMBIENT_RNG,
                format!(
                    "ambient randomness `{name}`; per-process entropy that no seed replays — \
                     thread an explicit seeded RNG instead"
                ),
                &t,
            );
        }
        if name == "rand" && txt(i + 1) == "::" && txt(i + 2) == "random" {
            push(
                codes::DET_AMBIENT_RNG,
                "ambient randomness `rand::random`; per-process entropy that no seed replays — \
                 thread an explicit seeded RNG instead"
                    .to_string(),
                &t,
            );
        }

        // D0401: concurrency primitives outside the one verified
        // module. Only call-shaped uses count (`spawn(…)`, `select!`),
        // so an ident named `spawn` in a doc path stays quiet.
        if !rel_path.ends_with("core/src/parallel.rs")
            && matches!(name, "spawn" | "try_recv" | "recv_timeout" | "select")
            && matches!(txt(i + 1), "(" | "!")
        {
            push(
                codes::DET_UNMANAGED_CONC,
                format!(
                    "concurrency primitive `{name}` outside core/src/parallel.rs; only the \
                     shard-routing pool's interleavings are covered by the detcheck model — route \
                     parallel work through RoutingPool"
                ),
                &t,
            );
        }

        // D0501: bare `f64 +=`/`-=` accumulation in sink files.
        if is_sink_file && f64_names.iter().any(|n| n == name) {
            let next = txt(i + 1);
            if next == "+=" || next == "-=" {
                push(
                    codes::DET_BARE_F64_ACC,
                    format!(
                        "bare `{name} {next} …` float accumulation in a module that feeds \
                         oracles; association order drifts under merging/parallelism — use \
                         cosmos_types::NeumaierSum (the PR-4 compensated-summation helper)"
                    ),
                    &t,
                );
            }
        }
    }
    out
}

/// Attach path/line/line-text context to a diagnostic.
fn locate(rel_path: &str, src: &str, diag: Diagnostic) -> Finding {
    let start = diag.span.map_or(0, |s| s.start).min(src.len());
    let line = src[..start].bytes().filter(|&b| b == b'\n').count() + 1;
    let line_start = src[..start].rfind('\n').map_or(0, |i| i + 1);
    let line_end = src[start..].find('\n').map_or(src.len(), |i| start + i);
    Finding {
        diag,
        path: rel_path.to_string(),
        line,
        line_text: src[line_start..line_end].to_string(),
    }
}

/// Collect names declared (or shadowed) with a matching type: binds
/// `name : [& | &mut | &'a] Type` and `name = Path::with_hash::ctor(…)`
/// patterns. Name-based rather than flow-based — good enough for this
/// workspace's style, where fields and locals are annotated.
fn typed_names(src: &str, toks: &[Tok], matches_ty: impl Fn(&str) -> bool) -> Vec<String> {
    let mut names = Vec::new();
    let txt = |i: usize| toks.get(i).map_or("", |t: &Tok| t.text(src));
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name :` — then skip refs/lifetimes/mut, then read the type
        // path; any component matching counts (`std::collections::HashMap`,
        // `FxHashMap<…>`).
        if txt(i + 1) == ":" {
            let mut j = i + 2;
            while matches!(txt(j), "&" | "mut")
                || toks.get(j).is_some_and(|t| t.kind == TokKind::Lifetime)
            {
                j += 1;
            }
            let mut matched = false;
            while let Some(t) = toks.get(j) {
                if t.kind == TokKind::Ident {
                    if matches_ty(t.text(src)) {
                        matched = true;
                    }
                    j += 1;
                    if txt(j) == "::" {
                        j += 1;
                        continue;
                    }
                }
                break;
            }
            if matched {
                names.push(txt(i).to_string());
            }
        }
        // `name = Hash…::default()` style constructor binding.
        if txt(i + 1) == "=" {
            let mut j = i + 2;
            let mut matched = false;
            while let Some(t) = toks.get(j) {
                if t.kind == TokKind::Ident {
                    if matches_ty(t.text(src)) {
                        matched = true;
                    }
                    j += 1;
                    if txt(j) == "::" || (txt(j) == "<" && matched) {
                        // Step over turbofish-ish type arguments coarsely.
                        j += 1;
                        continue;
                    }
                }
                break;
            }
            if matched && !names.iter().any(|n| n == txt(i)) {
                names.push(txt(i).to_string());
            }
        }
    }
    names.sort();
    names.dedup();
    names
}

/// Is token `i` the target of a for-loop (`for pat in [&[mut]] name`)?
/// Scans back over at most a small window for the `in` keyword with a
/// `for` before it.
fn for_loop_target(src: &str, toks: &[Tok], i: usize) -> bool {
    let txt = |j: usize| toks.get(j).map_or("", |t: &Tok| t.text(src));
    let mut j = i;
    // Step back over `&`/`mut` sigils and `self.`/`h.` field paths
    // before the name (`for k in &self.links`).
    loop {
        if j > 0 && matches!(txt(j - 1), "&" | "mut") {
            j -= 1;
        } else if j > 1 && txt(j - 1) == "." {
            j -= 2;
        } else {
            break;
        }
    }
    if j == 0 || txt(j - 1) != "in" {
        return false;
    }
    // Look back a short window for the `for`.
    let lo = j.saturating_sub(12);
    (lo..j).any(|k| txt(k) == "for")
}

/// Does the file derive or implement serde `Serialize`/`Deserialize`?
/// A `use serde::Serialize;` import alone does not make a sink — the
/// back-scan requires `derive(…)` or `impl` context near the token.
fn has_serde_impl(src: &str, toks: &[Tok]) -> bool {
    for i in 0..toks.len() {
        let name = toks[i].text(src);
        if name != "Serialize" && name != "Deserialize" {
            continue;
        }
        let lo = i.saturating_sub(24);
        for k in (lo..i).rev() {
            match toks[k].text(src) {
                "derive" | "impl" => return true,
                "use" | ";" => break,
                _ => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.diag.code).collect()
    }

    #[test]
    fn d0101_hash_iter_in_sink_file_with_span() {
        let src = "#[derive(Serialize)]\nstruct S;\nstruct H { links: FxHashMap<u32, u32> }\n\
                   fn emit(h: &H) { for (k, v) in h.links.iter() { let _ = (k, v); } }\n";
        // `links` is hash-typed and the file derives Serialize.
        let f = lint_file("crates/x/src/a.rs", src);
        assert_eq!(codes_of(&f), vec![codes::DET_HASH_ITER]);
        let span = f[0].diag.span.unwrap();
        assert_eq!(&src[span.start..span.end], "links");
        assert!(f[0].line_text.contains("for (k, v)"));
    }

    #[test]
    fn d0101_for_loop_directly_over_map() {
        let src = "fn routing_digest() {}\nstruct H { m: HashMap<u32, u32> }\n\
                   fn f(h: H) { for k in &h.m { let _ = k; } }\n";
        let f = lint_file("crates/x/src/a.rs", src);
        assert_eq!(codes_of(&f), vec![codes::DET_HASH_ITER]);
    }

    #[test]
    fn d0101_silent_without_sink() {
        let src = "struct H { m: HashMap<u32, u32> }\n\
                   fn f(h: &H) { for k in h.m.keys() { let _ = k; } }\n";
        assert!(lint_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn d0101_silent_for_btreemap_in_sink() {
        let src = "fn routing_digest() {}\nstruct H { m: BTreeMap<u32, u32> }\n\
                   fn f(h: &H) { for k in h.m.keys() { let _ = k; } }\n";
        assert!(lint_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn d0201_wall_clock_with_span() {
        let src = "fn f() { let t = Instant::now(); let _ = t; }";
        let f = lint_file("crates/x/src/a.rs", src);
        assert_eq!(codes_of(&f), vec![codes::DET_WALL_CLOCK]);
        let span = f[0].diag.span.unwrap();
        assert_eq!(&src[span.start..span.end], "Instant");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn d0201_system_time_too() {
        let src = "fn f() { let _ = SystemTime::now(); }";
        let f = lint_file("crates/x/src/a.rs", src);
        assert_eq!(codes_of(&f), vec![codes::DET_WALL_CLOCK]);
    }

    #[test]
    fn d0301_thread_rng_and_random_state() {
        let src = "fn f() { let r = thread_rng(); let s: RandomState = RandomState::new(); }";
        let f = lint_file("crates/x/src/a.rs", src);
        assert_eq!(
            codes_of(&f),
            vec![
                codes::DET_AMBIENT_RNG,
                codes::DET_AMBIENT_RNG,
                codes::DET_AMBIENT_RNG
            ]
        );
    }

    #[test]
    fn d0401_spawn_outside_parallel_rs() {
        let src = "fn f() { std::thread::spawn(|| {}); }";
        let f = lint_file("crates/x/src/a.rs", src);
        assert_eq!(codes_of(&f), vec![codes::DET_UNMANAGED_CONC]);
        // …but parallel.rs itself is exempt.
        assert!(lint_file("crates/core/src/parallel.rs", src).is_empty());
    }

    #[test]
    fn d0401_try_recv() {
        let src = "fn f(rx: Receiver<u32>) { let _ = rx.try_recv(); }";
        let f = lint_file("crates/x/src/a.rs", src);
        assert_eq!(codes_of(&f), vec![codes::DET_UNMANAGED_CONC]);
    }

    #[test]
    fn d0501_bare_f64_accumulation_in_sink_file() {
        let src = "fn to_json() {}\nstruct A { cost: f64 }\n\
                   fn f(a: &mut A, xs: &[f64]) { for x in xs { a.cost += x; } }\n";
        let f = lint_file("crates/x/src/a.rs", src);
        assert_eq!(codes_of(&f), vec![codes::DET_BARE_F64_ACC]);
        let span = f[0].diag.span.unwrap();
        assert_eq!(&src[span.start..span.end], "cost");
    }

    #[test]
    fn d0501_silent_without_sink() {
        let src = "struct A { cost: f64 }\nfn f(a: &mut A) { a.cost += 1.0; }\n";
        assert!(lint_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn test_regions_suppress_findings() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { \
                   std::thread::spawn(|| {}); let _ = Instant::now(); }\n}\n";
        assert!(lint_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn serde_use_import_is_not_a_sink() {
        let src = "use serde::Serialize;\nstruct H { m: HashMap<u32, u32> }\n\
                   fn f(h: &H) { for k in h.m.keys() { let _ = k; } }\n";
        assert!(lint_file("crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn serde_derive_is_a_sink() {
        let src = "use serde::Serialize;\n#[derive(Serialize)]\nstruct W { x: u32 }\n\
                   struct H { m: HashMap<u32, u32> }\n\
                   fn f(h: &H) { for k in h.m.keys() { let _ = k; } }\n";
        let f = lint_file("crates/x/src/a.rs", src);
        assert_eq!(codes_of(&f), vec![codes::DET_HASH_ITER]);
    }
}
