//! The determinism allowlist: justified suppressions with stale checks.
//!
//! `det-allowlist.toml` is an array of `[[allow]]` tables. Each entry
//! names a code, a path suffix, an optional line-text `pattern`, and a
//! mandatory `reason` — a suppression without a justification is a
//! parse error, not a style nit. The file format is the tiny TOML
//! subset those four keys need (string values, `#` comments), parsed by
//! hand because the workspace deliberately takes no TOML dependency.
//!
//! Stale checking closes the classic suppression-rot loophole: after a
//! lint run, any entry that suppressed zero findings is reported (fatal
//! under `--check-allowlist`), so a fixed site cannot leave its
//! suppression behind to silently swallow a future regression.

use crate::lints::Finding;

/// One `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// D-code this entry suppresses (e.g. `D0201`).
    pub code: String,
    /// Path suffix the finding's file must end with.
    pub path: String,
    /// Optional substring the finding's source line must contain;
    /// narrows the suppression to a specific site within the file.
    pub pattern: Option<String>,
    /// Why the suppression is sound. Mandatory and non-empty.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for stale reports.
    pub line: usize,
}

impl AllowEntry {
    /// Does this entry suppress `f`?
    pub fn matches(&self, f: &Finding) -> bool {
        self.code == f.diag.code
            && f.path.ends_with(&self.path)
            && self
                .pattern
                .as_ref()
                .is_none_or(|p| f.line_text.contains(p.as_str()))
    }
}

/// Parse `det-allowlist.toml`. Errors carry the offending line number.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries: Vec<AllowEntry> = Vec::new();
    let mut current: Option<AllowEntry> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(e) = current.take() {
                finish(e, &mut entries)?;
            }
            current = Some(AllowEntry {
                code: String::new(),
                path: String::new(),
                pattern: None,
                reason: String::new(),
                line: lineno,
            });
            continue;
        }
        if line.starts_with('[') {
            return Err(format!(
                "line {lineno}: unsupported table `{line}` (only [[allow]] entries)"
            ));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = \"value\"`"));
        };
        let Some(entry) = current.as_mut() else {
            return Err(format!(
                "line {lineno}: `{}` outside any [[allow]] entry",
                key.trim()
            ));
        };
        let value = parse_string(value.trim())
            .ok_or_else(|| format!("line {lineno}: value must be a \"double-quoted string\""))?;
        match key.trim() {
            "code" => entry.code = value,
            "path" => entry.path = value,
            "pattern" => entry.pattern = Some(value),
            "reason" => entry.reason = value,
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }
    if let Some(e) = current.take() {
        finish(e, &mut entries)?;
    }
    Ok(entries)
}

fn finish(e: AllowEntry, entries: &mut Vec<AllowEntry>) -> Result<(), String> {
    if e.code.is_empty() {
        return Err(format!("line {}: [[allow]] entry missing `code`", e.line));
    }
    if e.path.is_empty() {
        return Err(format!("line {}: [[allow]] entry missing `path`", e.line));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "line {}: [[allow]] entry for {} missing `reason` — every suppression must be justified",
            e.line, e.code
        ));
    }
    entries.push(e);
    Ok(())
}

/// Strip a `#` comment, honouring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

/// Parse a TOML basic string (`"…"` with `\"`/`\\` escapes).
fn parse_string(s: &str) -> Option<String> {
    let inner = s.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                't' => out.push('\t'),
                _ => return None,
            }
        } else if c == '"' {
            return None;
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Split findings into (unsuppressed, per-entry hit counts). An entry
/// with zero hits is stale.
pub fn apply_allowlist(
    findings: Vec<Finding>,
    entries: &[AllowEntry],
) -> (Vec<Finding>, Vec<(&AllowEntry, usize)>) {
    let mut hits = vec![0usize; entries.len()];
    let mut kept = Vec::new();
    'next: for f in findings {
        for (i, e) in entries.iter().enumerate() {
            if e.matches(&f) {
                hits[i] += 1;
                continue 'next;
            }
        }
        kept.push(f);
    }
    let counts = entries.iter().zip(hits).collect();
    (kept, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::lint_file;

    const SAMPLE: &str = r#"
# Determinism allowlist.
[[allow]]
code = "D0201"
path = "crates/x/src/a.rs"
pattern = "Instant::now"
reason = "bench timing only; never feeds a digest"

[[allow]]
code = "D0301"
path = "crates/y/src/b.rs"
reason = "seeded at the CLI boundary"
"#;

    #[test]
    fn parses_entries_with_all_keys() {
        let entries = parse_allowlist(SAMPLE).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].code, "D0201");
        assert_eq!(entries[0].pattern.as_deref(), Some("Instant::now"));
        assert_eq!(entries[1].pattern, None);
        assert_eq!(entries[1].line, 9);
    }

    #[test]
    fn missing_reason_is_a_parse_error() {
        let text = "[[allow]]\ncode = \"D0201\"\npath = \"a.rs\"\n";
        let err = parse_allowlist(text).unwrap_err();
        assert!(err.contains("missing `reason`"), "{err}");
    }

    #[test]
    fn comments_and_quoted_hashes() {
        let text = "[[allow]]\ncode = \"D0201\" # why not\npath = \"a#b.rs\"\nreason = \"ok\"\n";
        let entries = parse_allowlist(text).unwrap();
        assert_eq!(entries[0].path, "a#b.rs");
    }

    #[test]
    fn suppression_and_stale_detection() {
        let src = "fn f() { let _ = Instant::now(); }";
        let findings = lint_file("crates/x/src/a.rs", src);
        assert_eq!(findings.len(), 1);
        let entries = parse_allowlist(SAMPLE).unwrap();
        let (kept, counts) = apply_allowlist(findings, &entries);
        assert!(kept.is_empty(), "entry 0 suppresses the finding");
        assert_eq!(counts[0].1, 1);
        // Entry 1 matched nothing: stale.
        assert_eq!(counts[1].1, 0);
    }

    #[test]
    fn pattern_narrows_the_match() {
        let entries = parse_allowlist(
            "[[allow]]\ncode = \"D0201\"\npath = \"a.rs\"\npattern = \"no such text\"\nreason = \"r\"\n",
        )
        .unwrap();
        let findings = lint_file("crates/x/src/a.rs", "fn f() { let _ = Instant::now(); }");
        let (kept, counts) = apply_allowlist(findings, &entries);
        assert_eq!(kept.len(), 1, "pattern mismatch keeps the finding");
        assert_eq!(counts[0].1, 0);
    }
}
