#![forbid(unsafe_code)]
//! COSMOS determinism analysis.
//!
//! The replay contract — digests, metrics, and delivery order identical
//! across replays and at any core count — is enforced dynamically by
//! the testkit's 64-seed sweeps. This crate adds the static layer:
//!
//! - [`lints`] / [`allowlist`]: `cosmos-detlint`, a workspace
//!   nondeterminism lint (`D` codes in the shared `cosmos_lint::codes`
//!   registry) with a justified, stale-checked suppression file.
//! - [`model`]: `cosmos-det check`, a bounded model checker that
//!   exhaustively enumerates shard-routing-protocol interleavings and
//!   proves the three properties the seed sweeps can only sample.
//!
//! Both CLIs share the `JsonDiagnostic`-style `--json` conventions of
//! `cosmos-lint`/`cosmos-verify`/`cosmos-bound`.

pub mod allowlist;
pub mod lints;
pub mod model;
pub mod scan;

use lints::Finding;
use std::path::{Path, PathBuf};

/// Source files the determinism lint covers: every `.rs` under
/// `crates/*/src` and `crates/*/benches` (benches are held to the same
/// contract except where the allowlist says otherwise — bench timing is
/// the canonical justified `D0201` suppression). Paths are returned
/// sorted, workspace-relative alongside absolute, so runs are
/// reproducible byte-for-byte.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    for krate in sorted_dir(&crates)? {
        if !krate.is_dir() {
            continue;
        }
        for sub in ["src", "benches"] {
            let dir = krate.join(sub);
            if dir.is_dir() {
                collect_rs(&dir, &mut out)?;
            }
        }
    }
    let mut rel = Vec::with_capacity(out.len());
    for abs in out {
        let r = abs
            .strip_prefix(root)
            .unwrap_or(&abs)
            .to_string_lossy()
            .replace('\\', "/");
        rel.push((r, abs));
    }
    rel.sort();
    Ok(rel)
}

fn sorted_dir(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<Result<_, _>>()?;
    entries.sort();
    Ok(entries)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for path in sorted_dir(dir)? {
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every workspace file under `root`. Unreadable files become
/// `D0001` findings rather than aborting the run.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel, abs) in workspace_files(root)? {
        match std::fs::read_to_string(&abs) {
            Ok(src) => findings.extend(lints::lint_file(&rel, &src)),
            Err(e) => findings.push(Finding {
                diag: cosmos_lint::Diagnostic::error(
                    cosmos_lint::codes::DET_IO,
                    format!("cannot read {rel}: {e}"),
                    None,
                ),
                path: rel,
                line: 0,
                line_text: String::new(),
            }),
        }
    }
    Ok(findings)
}
