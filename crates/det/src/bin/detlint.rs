#![forbid(unsafe_code)]
//! `cosmos-detlint` CLI: the workspace determinism lint.
//!
//! ```text
//! cosmos-detlint [ROOT] [--allowlist FILE] [--check-allowlist] [--json]
//! ```
//!
//! Walks every `crates/*/src` and `crates/*/benches` Rust file under
//! ROOT (default: the current directory), runs the `D`-code determinism
//! lints (see `cosmos_det::lints`), and subtracts the justified
//! suppressions in `det-allowlist.toml` (default: `ROOT/det-allowlist.toml`,
//! used only if present). `--check-allowlist` additionally fails the
//! run when any allowlist entry suppressed nothing — a stale
//! suppression is reported as `D0002` so fixed sites cannot leave
//! silent holes behind. `--json` emits one JSON array in the
//! `JsonDiagnostic` shape shared with `cosmos-lint`/`cosmos-verify`/
//! `cosmos-bound`, wrapped with `file`/`line` context. Exit status: 0
//! clean, 1 unsuppressed errors (or stale entries under
//! `--check-allowlist`), 2 usage/IO problems.

use cosmos_det::allowlist::{apply_allowlist, parse_allowlist};
use cosmos_det::lint_workspace;
use cosmos_lint::{codes, Diagnostic, JsonDiagnostic};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut allowlist_path: Option<PathBuf> = None;
    let mut check_allowlist = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--allowlist" => match args.next() {
                Some(p) => allowlist_path = Some(PathBuf::from(p)),
                None => return usage("--allowlist needs a file argument"),
            },
            "--check-allowlist" => check_allowlist = true,
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag '{other}'"));
            }
            path if root.is_none() => root = Some(PathBuf::from(path)),
            _ => return usage("at most one ROOT directory"),
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from("."));
    if !root.join("crates").is_dir() {
        eprintln!(
            "cosmos-detlint: {} has no crates/ directory (pass the workspace root)",
            root.display()
        );
        return ExitCode::from(2);
    }

    let allowlist_path = allowlist_path.unwrap_or_else(|| root.join("det-allowlist.toml"));
    let entries = if allowlist_path.is_file() {
        let text = match std::fs::read_to_string(&allowlist_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cosmos-detlint: {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        };
        match parse_allowlist(&text) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("cosmos-detlint: {}: {e}", allowlist_path.display());
                return ExitCode::from(2);
            }
        }
    } else {
        Vec::new()
    };

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cosmos-detlint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let total = findings.len();
    let (kept, counts) = apply_allowlist(findings, &entries);
    let suppressed = total - kept.len();

    // Stale entries become findings of their own, so they flow through
    // the same rendering/JSON paths as everything else.
    let mut all = kept;
    let mut stale = 0usize;
    if check_allowlist {
        for (entry, hits) in &counts {
            if *hits == 0 {
                stale += 1;
                all.push(cosmos_det::lints::Finding {
                    diag: Diagnostic::error(
                        codes::DET_STALE_ALLOW,
                        format!(
                            "stale allowlist entry (line {}): {} at {}{} suppressed nothing — \
                             delete it or fix its path/pattern",
                            entry.line,
                            entry.code,
                            entry.path,
                            entry
                                .pattern
                                .as_deref()
                                .map(|p| format!(" matching {p:?}"))
                                .unwrap_or_default(),
                        ),
                        None,
                    ),
                    path: allowlist_path.to_string_lossy().into_owned(),
                    line: entry.line,
                    line_text: String::new(),
                });
            }
        }
    }

    if json {
        let out: Vec<serde_json::Value> = all
            .iter()
            .map(|f| {
                serde_json::json!({
                    "file": f.path,
                    "line": f.line,
                    "diagnostic": JsonDiagnostic::from(&f.diag),
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string(&out).expect("findings always serialize")
        );
    } else {
        for f in &all {
            println!("{}:{}: {}", f.path, f.line, f.diag.headline());
            if !f.line_text.is_empty() {
                println!("   | {}", f.line_text.trim_end());
            }
        }
        println!(
            "cosmos-detlint: {} finding{}, {suppressed} suppressed, {} allowlist entr{}{}",
            all.len(),
            if all.len() == 1 { "" } else { "s" },
            entries.len(),
            if entries.len() == 1 { "y" } else { "ies" },
            if check_allowlist {
                format!(" ({stale} stale)")
            } else {
                String::new()
            },
        );
    }

    if all.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

const USAGE: &str = "usage: cosmos-detlint [ROOT] [--allowlist FILE] [--check-allowlist] [--json]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("cosmos-detlint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
