//! `detcheck`: a bounded model checker for the shard-routing protocol.
//!
//! The PR-8 pool (`cosmos_core::parallel::RoutingPool`) is re-expressed
//! here as an explicit-state transition system, loom-style: every
//! scheduler decision is a branch, and a depth-first search enumerates
//! *all* interleavings of M interest mutations × N workers × K batches,
//! checking safety properties on each transition and each terminal
//! state. The point is exhaustiveness where the 64-seed sweeps can only
//! sample: the protocol's correctness rests on a three-way handshake —
//! CoW snapshot publication, generation-stamped lazy invalidation, and
//! the seq-ordered replay merge — and a missed step in any leg is a
//! determinism bug that may fire on one interleaving in millions.
//!
//! # Correspondence to the implementation
//!
//! | model                         | `parallel.rs` / `router.rs`                    |
//! |-------------------------------|------------------------------------------------|
//! | `pub_core`, `pub_gen`         | routers' interest state + `interest_generation`|
//! | `Mutate`                      | `Router::invalidate_plans` (gen bump + CoW)    |
//! | `snap`, refresh-on-gen-change | `RoutingPool::ensure_snapshot` (epoch compare) |
//! | refresh requires drained pool | `debug_assert_eq!(in_flight, 0)` on refresh    |
//! | `Dispatch{worker}`            | `dispatch` + `shard_of` (all shard choices)    |
//! | `store_gen` clear-on-mismatch | `worker_loop`'s `gens[idx] != generation()`    |
//! | `chan` / `pending` / `Replay` | results channel + `wait_for`'s seq reorder buf |
//! | counter fold at replay        | `RoutedBatch::counters` → `absorb_counters`    |
//!
//! # Checked properties
//!
//! 1. **stale-core** — a worker never routes a batch against interest
//!    state older than what was published when the batch was dispatched,
//!    and its plan store (after lazy invalidation) agrees with the
//!    snapshot it routes. Defeated by `Inject::SkipBump` (publication
//!    without a generation bump) and `Inject::SkipInvalidate` (worker
//!    keeps a stale store).
//! 2. **replay-order** — the driver folds routed batches back in exactly
//!    serial submission (seq) order. Defeated by
//!    `Inject::ReplayArrival` (folding in channel-arrival order).
//! 3. **counter-conservation** — after all batches replay, the folded
//!    `RouterCounters` totals equal the per-batch sums exactly; nothing
//!    is lost or double-counted on any interleaving. Defeated by
//!    `Inject::SkipFold`.

use serde::Serialize;
use std::collections::{HashMap, VecDeque};

/// Model bounds: M mutations, N workers, K batches.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Params {
    pub mutations: u8,
    pub workers: u8,
    pub batches: u8,
    /// Injected protocol bug (canary), if any.
    pub inject: Inject,
}

/// Injectable protocol bugs. Each elides one load-bearing step; the
/// checker must attribute each to its property (the CI canary greps for
/// `stale-core` under `--inject-skip-bump`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// Faithful protocol.
    None,
    /// Interest mutation publishes a new core without bumping the
    /// generation — `ensure_snapshot` then sees a clean epoch and skips
    /// the refresh, so workers keep routing the old core.
    SkipBump,
    /// Worker skips the clear-on-generation-mismatch of its plan store,
    /// routing fresh interests with stale cached plans.
    SkipInvalidate,
    /// Driver folds results in channel-arrival order instead of seq
    /// order (the reorder buffer removed).
    ReplayArrival,
    /// Driver drops one batch's counter fold (seq 1).
    SkipFold,
}

impl Inject {
    /// Stable kebab-case name, matching the CLI flag suffix.
    pub fn as_str(self) -> &'static str {
        match self {
            Inject::None => "none",
            Inject::SkipBump => "skip-bump",
            Inject::SkipInvalidate => "skip-invalidate",
            Inject::ReplayArrival => "replay-arrival",
            Inject::SkipFold => "skip-fold",
        }
    }
}

// The vendored serde_derive stand-in has no `#[serde(rename_all)]`;
// kebab-case by hand keeps the JSON names aligned with the CLI flags.
impl Serialize for Inject {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.as_str().to_string())
    }
}

/// One routing job carried from dispatch to a worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ModelJob {
    seq: u8,
    /// Generation stamped on the snapshot the job routes against.
    gen: u8,
    /// Interest core the snapshot exposes.
    core: u8,
    /// The publisher's core at dispatch time — what the job *should*
    /// route against. Equal to `core` whenever the protocol is correct.
    expected_core: u8,
}

/// A worker's routed output for one batch (counters inline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ModelDone {
    seq: u8,
    routed: u32,
    dropped: u32,
}

/// What a worker thread is doing.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Phase {
    Idle,
    /// Dequeued a job, not yet routed.
    HasJob(ModelJob),
    /// Routed; result not yet sent on the channel.
    Routed(ModelDone),
}

/// One worker: its job queue, phase, and shard-owned plan store (the
/// `(stores[idx], gens[idx])` pair of `worker_loop`, collapsed to the
/// one overlay node the model needs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Worker {
    queue: VecDeque<ModelJob>,
    phase: Phase,
    /// Generation the plan store was filled at; `None` = empty store.
    store_gen: Option<u8>,
    /// Core the cached plans were computed from.
    store_core: u8,
}

/// Global model state. `Hash + Eq` so the DFS can deduplicate; every
/// container is ordered (`Vec`/`VecDeque`), so equal states hash equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    /// Published interest core (version counter of the CoW state).
    pub_core: u8,
    /// Published interest generation (`Router::interest_generation`).
    pub_gen: u8,
    muts_done: u8,
    /// Driver's snapshot: `(gen, core)` it was built at.
    snap: Option<(u8, u8)>,
    dispatched: u8,
    replayed: u8,
    in_flight: u8,
    /// The mpsc results channel: per-send FIFO.
    chan: VecDeque<ModelDone>,
    /// Driver-side received-but-not-replayed results, in arrival order.
    pending: Vec<ModelDone>,
    folded_routed: u32,
    folded_dropped: u32,
    workers: Vec<Worker>,
}

/// One scheduler step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Driver mutates interests: new core, generation bump.
    Mutate,
    /// Driver dispatches the next batch to worker `w` (all shard
    /// assignments are explored).
    Dispatch(u8),
    /// Worker `w` dequeues its next job.
    Dequeue(u8),
    /// Worker `w` routes its dequeued job (lazy store invalidation
    /// happens here — this is where property 1 is checked).
    Route(u8),
    /// Worker `w` sends its routed result on the channel.
    Send(u8),
    /// Driver receives one result from the channel into `pending`.
    Receive,
    /// Driver replays (folds) the next result in seq order.
    Replay,
}

impl std::fmt::Display for Action {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Action::Mutate => write!(f, "mutate"),
            Action::Dispatch(w) => write!(f, "dispatch->w{w}"),
            Action::Dequeue(w) => write!(f, "w{w}:dequeue"),
            Action::Route(w) => write!(f, "w{w}:route"),
            Action::Send(w) => write!(f, "w{w}:send"),
            Action::Receive => write!(f, "receive"),
            Action::Replay => write!(f, "replay"),
        }
    }
}

/// Property identifiers, stable for CI attribution.
pub const P_STALE_CORE: &str = "stale-core";
pub const P_REPLAY_ORDER: &str = "replay-order";
pub const P_COUNTER_CONSERVATION: &str = "counter-conservation";

/// Per-property verdict.
#[derive(Debug, Clone, Serialize)]
pub struct PropertyReport {
    /// Stable id (`stale-core`, `replay-order`, `counter-conservation`).
    pub id: &'static str,
    /// What the property asserts.
    pub name: &'static str,
    /// No violating transition or terminal state was reachable.
    pub ok: bool,
    /// Number of violating transitions/terminals found.
    pub violations: u64,
    /// The first violating schedule, as a list of actions from the
    /// initial state, ending in a description of the violation.
    pub trace: Option<Vec<String>>,
}

/// Exhaustive-check result.
#[derive(Debug, Clone, Serialize)]
pub struct CheckReport {
    pub params: Params,
    /// Distinct states reached.
    pub states: u64,
    /// Transitions applied (state expansions × enabled actions).
    pub transitions: u64,
    /// Distinct complete schedules (interleavings init → terminal);
    /// states deduplicate heavily, schedules are the raw count the
    /// seed sweeps would have to sample from.
    pub schedules: u64,
    /// Distinct completed-execution states (every mutation done, every
    /// batch replayed).
    pub terminals: u64,
    /// States with no enabled action that are not terminal. Always 0
    /// for the modeled protocol; a nonzero count means the model (or an
    /// injected bug) deadlocks.
    pub deadlocks: u64,
    pub properties: Vec<PropertyReport>,
}

impl CheckReport {
    /// All three properties verified, no deadlocks.
    pub fn all_ok(&self) -> bool {
        self.deadlocks == 0 && self.properties.iter().all(|p| p.ok)
    }
}

/// Exhaustively check the shard protocol at the given bounds.
pub fn check(params: Params) -> CheckReport {
    let n = params.workers.max(1);
    let init = State {
        pub_core: 0,
        pub_gen: 0,
        muts_done: 0,
        snap: None,
        dispatched: 0,
        replayed: 0,
        in_flight: 0,
        chan: VecDeque::new(),
        pending: Vec::new(),
        folded_routed: 0,
        folded_dropped: 0,
        workers: (0..n)
            .map(|_| Worker {
                queue: VecDeque::new(),
                phase: Phase::Idle,
                store_gen: None,
                store_core: 0,
            })
            .collect(),
    };

    let mut chk = Checker {
        params,
        visited: HashMap::new(),
        transitions: 0,
        terminals: 0,
        deadlocks: 0,
        props: [
            PropState::new(
                P_STALE_CORE,
                "worker never routes against stale interest state",
            ),
            PropState::new(
                P_REPLAY_ORDER,
                "replay folds results in serial submission order",
            ),
            PropState::new(
                P_COUNTER_CONSERVATION,
                "folded counters equal per-batch sums exactly",
            ),
        ],
    };
    let mut path: Vec<Action> = Vec::new();
    let schedules = chk.dfs(&init, &mut path);
    chk.visited.insert(init, schedules);

    CheckReport {
        params,
        states: chk.visited.len() as u64,
        transitions: chk.transitions,
        schedules,
        terminals: chk.terminals,
        deadlocks: chk.deadlocks,
        properties: chk.props.into_iter().map(PropState::into_report).collect(),
    }
}

struct PropState {
    id: &'static str,
    name: &'static str,
    violations: u64,
    trace: Option<Vec<String>>,
}

impl PropState {
    fn new(id: &'static str, name: &'static str) -> PropState {
        PropState {
            id,
            name,
            violations: 0,
            trace: None,
        }
    }

    fn violate(&mut self, path: &[Action], detail: String) {
        self.violations += 1;
        if self.trace.is_none() {
            let mut t: Vec<String> = path.iter().map(Action::to_string).collect();
            t.push(format!("VIOLATION[{}]: {detail}", self.id));
            self.trace = Some(t);
        }
    }

    fn into_report(self) -> PropertyReport {
        PropertyReport {
            id: self.id,
            name: self.name,
            ok: self.violations == 0,
            violations: self.violations,
            trace: self.trace,
        }
    }
}

struct Checker {
    params: Params,
    /// State → number of complete schedules reachable from it. The
    /// transition graph is a DAG (every action advances a monotone
    /// counter), so memoized path counting is exact.
    visited: HashMap<State, u64>,
    transitions: u64,
    terminals: u64,
    deadlocks: u64,
    /// `[stale-core, replay-order, counter-conservation]`.
    props: [PropState; 3],
}

impl Checker {
    /// Expand `s` (each distinct state exactly once; properties are
    /// checked per unique transition) and return the number of complete
    /// schedules from it.
    fn dfs(&mut self, s: &State, path: &mut Vec<Action>) -> u64 {
        let actions = self.enabled(s);
        if actions.is_empty() {
            if self.is_terminal(s) {
                self.terminals += 1;
                self.check_terminal(s, path);
            } else {
                self.deadlocks += 1;
            }
            return 1;
        }
        let mut schedules: u64 = 0;
        for a in actions {
            self.transitions += 1;
            path.push(a);
            let next = self.apply(s, a, path);
            let below = match self.visited.get(&next) {
                Some(&c) => c,
                None => {
                    let c = self.dfs(&next, path);
                    self.visited.insert(next, c);
                    c
                }
            };
            schedules = schedules.saturating_add(below);
            path.pop();
        }
        schedules
    }

    fn is_terminal(&self, s: &State) -> bool {
        s.muts_done == self.params.mutations
            && s.dispatched == self.params.batches
            && s.replayed == self.params.batches
    }

    fn enabled(&self, s: &State) -> Vec<Action> {
        let mut out = Vec::new();
        if s.muts_done < self.params.mutations {
            out.push(Action::Mutate);
        }
        if s.dispatched < self.params.batches {
            // `ensure_snapshot` refreshes only with the pool drained
            // (the `in_flight == 0` debug assertion): when a refresh is
            // due but jobs are in flight, the driver replays first, so
            // Dispatch is simply not enabled yet on this interleaving.
            let refresh_due = match s.snap {
                None => true,
                Some((gen, _)) => gen != s.pub_gen,
            };
            if !refresh_due || s.in_flight == 0 {
                for w in 0..self.params.workers {
                    out.push(Action::Dispatch(w));
                }
            }
        }
        for (w, worker) in s.workers.iter().enumerate() {
            let w = w as u8;
            match worker.phase {
                Phase::Idle => {
                    if !worker.queue.is_empty() {
                        out.push(Action::Dequeue(w));
                    }
                }
                Phase::HasJob(_) => out.push(Action::Route(w)),
                Phase::Routed(_) => out.push(Action::Send(w)),
            }
        }
        if !s.chan.is_empty() {
            out.push(Action::Receive);
        }
        let replay_ready = if self.params.inject == Inject::ReplayArrival {
            !s.pending.is_empty()
        } else {
            s.pending.iter().any(|d| d.seq == s.replayed)
        };
        if replay_ready {
            out.push(Action::Replay);
        }
        out
    }

    fn apply(&mut self, s: &State, a: Action, path: &[Action]) -> State {
        let mut n = s.clone();
        match a {
            Action::Mutate => {
                // `invalidate_plans`: the interest state (core) changes,
                // and the generation bump is what makes the change
                // visible to `ensure_snapshot`. SkipBump elides the
                // bump — publication the snapshot protocol cannot see.
                n.muts_done += 1;
                n.pub_core += 1;
                if self.params.inject != Inject::SkipBump {
                    n.pub_gen += 1;
                }
            }
            Action::Dispatch(w) => {
                let refresh_due = match n.snap {
                    None => true,
                    Some((gen, _)) => gen != n.pub_gen,
                };
                if refresh_due {
                    debug_assert_eq!(n.in_flight, 0, "modeled refresh with jobs in flight");
                    n.snap = Some((n.pub_gen, n.pub_core));
                }
                let (gen, core) = n.snap.expect("snapshot exists after ensure");
                let job = ModelJob {
                    seq: n.dispatched,
                    gen,
                    core,
                    expected_core: n.pub_core,
                };
                n.dispatched += 1;
                n.in_flight += 1;
                n.workers[w as usize].queue.push_back(job);
            }
            Action::Dequeue(w) => {
                let worker = &mut n.workers[w as usize];
                let job = worker.queue.pop_front().expect("enabled only when queued");
                worker.phase = Phase::HasJob(job);
            }
            Action::Route(w) => {
                let worker = &mut n.workers[w as usize];
                let Phase::HasJob(job) = worker.phase.clone() else {
                    unreachable!("enabled only with a dequeued job")
                };
                // Lazy store invalidation: clear-and-refill when the
                // store's generation disagrees with the snapshot's.
                // SkipInvalidate keeps a stale non-empty store instead.
                if worker.store_gen != Some(job.gen)
                    && (self.params.inject != Inject::SkipInvalidate || worker.store_gen.is_none())
                {
                    worker.store_gen = Some(job.gen);
                    worker.store_core = job.core;
                }
                let store_core = worker.store_core;
                // Property 1, both halves: the snapshot the job carries
                // must be what was published at its dispatch, and the
                // plan store must agree with that snapshot.
                if job.core != job.expected_core {
                    self.props[0].violate(
                        path,
                        format!(
                            "w{w} routes batch seq={} against core {} but core {} was published \
                             before its dispatch",
                            job.seq, job.core, job.expected_core
                        ),
                    );
                }
                if store_core != job.core {
                    self.props[0].violate(
                        path,
                        format!(
                            "w{w} routes batch seq={} with plans cached from core {} against \
                             snapshot core {}",
                            job.seq, store_core, job.core
                        ),
                    );
                }
                // Distinct per-batch counter deltas (seq+1 routed, 1
                // dropped) make loss, duplication, and permutation all
                // visible in the fold totals.
                worker.phase = Phase::Routed(ModelDone {
                    seq: job.seq,
                    routed: u32::from(job.seq) + 1,
                    dropped: 1,
                });
            }
            Action::Send(w) => {
                let worker = &mut n.workers[w as usize];
                let Phase::Routed(done) = worker.phase.clone() else {
                    unreachable!("enabled only with a routed result")
                };
                worker.phase = Phase::Idle;
                n.chan.push_back(done);
            }
            Action::Receive => {
                let done = n.chan.pop_front().expect("enabled only when non-empty");
                n.pending.push(done);
            }
            Action::Replay => {
                let pos = if self.params.inject == Inject::ReplayArrival {
                    // Bug: fold in channel-arrival order — the reorder
                    // buffer (`wait_for`'s BTreeMap) removed.
                    0
                } else {
                    n.pending
                        .iter()
                        .position(|d| d.seq == n.replayed)
                        .expect("enabled only when the next seq is pending")
                };
                let done = n.pending.remove(pos);
                if done.seq != n.replayed {
                    self.props[1].violate(
                        path,
                        format!(
                            "replayed batch seq={} while serial order expects seq={}",
                            done.seq, n.replayed
                        ),
                    );
                }
                let skip_fold = self.params.inject == Inject::SkipFold && done.seq == 1;
                if !skip_fold {
                    n.folded_routed += done.routed;
                    n.folded_dropped += done.dropped;
                }
                n.replayed += 1;
                n.in_flight -= 1;
            }
        }
        n
    }

    fn check_terminal(&mut self, s: &State, path: &[Action]) {
        let k = u32::from(self.params.batches);
        let want_routed: u32 = (1..=k).sum();
        let want_dropped = k;
        if s.folded_routed != want_routed || s.folded_dropped != want_dropped {
            self.props[2].violate(
                path,
                format!(
                    "terminal fold routed={} dropped={} but per-batch sums are routed={} dropped={}",
                    s.folded_routed, s.folded_dropped, want_routed, want_dropped
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(inject: Inject) -> Params {
        Params {
            mutations: 2,
            workers: 2,
            batches: 3,
            inject,
        }
    }

    #[test]
    fn faithful_protocol_verifies_all_properties() {
        let r = check(params(Inject::None));
        assert!(r.all_ok(), "{r:?}");
        assert_eq!(r.deadlocks, 0);
        assert!(r.terminals > 0, "some execution completes");
        // M=N=2, K=3 is the CI bound: thousands of distinct states,
        // schedules on the order of 10^5 — the space the seed sweeps
        // could only ever sample.
        assert!(r.states > 1_000, "states = {}", r.states);
        assert!(r.schedules > 100_000, "schedules = {}", r.schedules);
    }

    #[test]
    fn skip_bump_is_caught_by_stale_core_only() {
        let r = check(params(Inject::SkipBump));
        let stale = &r.properties[0];
        assert_eq!(stale.id, P_STALE_CORE);
        assert!(!stale.ok, "skip-bump must violate stale-core");
        assert!(stale.violations > 0);
        let trace = stale.trace.as_ref().expect("a violating schedule");
        assert!(trace.iter().any(|s| s == "mutate"), "{trace:?}");
        assert!(trace.last().unwrap().contains("VIOLATION[stale-core]"));
        // Attribution is clean: the other two properties still hold.
        assert!(r.properties[1].ok, "replay-order unaffected");
        assert!(r.properties[2].ok, "counters unaffected");
    }

    #[test]
    fn skip_invalidate_is_caught_by_stale_core() {
        let r = check(params(Inject::SkipInvalidate));
        assert!(!r.properties[0].ok, "stale store must violate stale-core");
        let trace = r.properties[0].trace.as_ref().unwrap();
        assert!(
            trace.last().unwrap().contains("plans cached from core"),
            "{trace:?}"
        );
        assert!(r.properties[1].ok && r.properties[2].ok);
    }

    #[test]
    fn replay_arrival_order_is_caught_by_replay_order() {
        let r = check(params(Inject::ReplayArrival));
        assert!(
            !r.properties[1].ok,
            "arrival-order fold must violate replay-order"
        );
        assert!(r.properties[0].ok, "stale-core unaffected");
    }

    #[test]
    fn skip_fold_is_caught_by_counter_conservation() {
        let r = check(params(Inject::SkipFold));
        assert!(
            !r.properties[2].ok,
            "dropped fold must violate conservation"
        );
        assert!(r.properties[0].ok && r.properties[1].ok);
    }

    #[test]
    fn single_worker_single_batch_is_tiny_and_clean() {
        let r = check(Params {
            mutations: 1,
            workers: 1,
            batches: 1,
            inject: Inject::None,
        });
        assert!(r.all_ok());
        assert!(r.states < 200, "states = {}", r.states);
    }

    /// A hand-built known-good schedule: dispatch both batches to one
    /// worker, mutate mid-flight, drain, dispatch the third. Walked
    /// through the same transition code the DFS uses, via a 1-worker
    /// pipeline where each step's enabledness is forced.
    #[test]
    fn known_good_trace_pipelined_mutation() {
        // K=2 so the whole schedule is spelled out; the mutation lands
        // while batch 0 is in flight, which the CoW protocol permits.
        let r = check(Params {
            mutations: 1,
            workers: 1,
            batches: 2,
            inject: Inject::None,
        });
        assert!(r.all_ok(), "{r:?}");
        // The DFS covered the hand schedule among all others: dispatch,
        // dequeue, mutate, route, send, receive, replay, dispatch…
        assert!(r.terminals > 1, "multiple completions explored");
    }

    /// Known-bad trace: with the reorder buffer removed, there exists a
    /// 2-worker schedule where seq 1 arrives before seq 0 and is folded
    /// first. The trace the checker reports exhibits exactly that.
    #[test]
    fn known_bad_trace_shows_out_of_order_fold() {
        let r = check(Params {
            mutations: 0,
            workers: 2,
            batches: 2,
            inject: Inject::ReplayArrival,
        });
        let p = &r.properties[1];
        assert!(!p.ok);
        let trace = p.trace.as_ref().unwrap();
        assert!(
            trace.last().unwrap().contains("seq=1"),
            "fold of seq 1 before seq 0: {trace:?}"
        );
    }
}
