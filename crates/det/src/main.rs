#![forbid(unsafe_code)]
//! `cosmos-det` CLI: the shard-protocol bounded model checker.
//!
//! ```text
//! cosmos-det check [--mutations M] [--workers N] [--batches K] [--json]
//!                  [--inject-skip-bump | --inject-skip-invalidate |
//!                   --inject-replay-arrival | --inject-skip-fold]
//! ```
//!
//! Exhaustively enumerates every interleaving of M interest mutations ×
//! N workers × K batches of the PR-8 shard-routing protocol and checks
//! the three determinism properties (see `cosmos_det::model`). The
//! `--inject-*` flags elide one protocol step each; CI runs
//! `--inject-skip-bump` as a canary and requires the failure to be
//! attributed to the `stale-core` property. Exit status: 0 all
//! properties verified, 1 any violation or deadlock, 2 usage errors.

use cosmos_det::model::{check, CheckReport, Inject, Params};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("check") => {}
        Some("--help") | Some("-h") => {
            eprintln!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => return usage(&format!("unknown command '{other}'")),
        None => return usage("missing command (try `cosmos-det check`)"),
    }

    let mut params = Params {
        mutations: 2,
        workers: 2,
        batches: 3,
        inject: Inject::None,
    };
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mutations" => match parse_bound(args.next()) {
                Some(v) => params.mutations = v,
                None => return usage("--mutations needs a small integer"),
            },
            "--workers" => match parse_bound(args.next()) {
                Some(v) if v >= 1 => params.workers = v,
                _ => return usage("--workers needs a small integer >= 1"),
            },
            "--batches" => match parse_bound(args.next()) {
                Some(v) => params.batches = v,
                None => return usage("--batches needs a small integer"),
            },
            "--json" => json = true,
            "--inject-skip-bump" => params.inject = Inject::SkipBump,
            "--inject-skip-invalidate" => params.inject = Inject::SkipInvalidate,
            "--inject-replay-arrival" => params.inject = Inject::ReplayArrival,
            "--inject-skip-fold" => params.inject = Inject::SkipFold,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag '{other}'")),
        }
    }

    let report = check(params);
    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("report always serializes")
        );
    } else {
        render(&report);
    }
    if report.all_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn parse_bound(arg: Option<String>) -> Option<u8> {
    // Bounds above 6 explode combinatorially far past usefulness; the
    // cap keeps a typo from looking like a hang.
    arg?.parse::<u8>().ok().filter(|v| *v <= 6)
}

fn render(r: &CheckReport) {
    println!(
        "cosmos-det check: M={} mutations x N={} workers x K={} batches (inject: {:?})",
        r.params.mutations, r.params.workers, r.params.batches, r.params.inject
    );
    println!(
        "  explored {} states, {} transitions, {} schedules, {} deadlocks",
        r.states, r.transitions, r.schedules, r.deadlocks
    );
    for p in &r.properties {
        if p.ok {
            println!("  property {:<22} OK   ({})", p.id, p.name);
        } else {
            println!(
                "  property {:<22} FAIL ({} violating schedules)",
                p.id, p.violations
            );
            if let Some(trace) = &p.trace {
                println!("    first violating schedule:");
                for step in trace {
                    println!("      {step}");
                }
            }
        }
    }
    if r.deadlocks > 0 {
        println!("  DEADLOCK: {} stuck non-terminal states", r.deadlocks);
    }
}

const USAGE: &str = "usage: cosmos-det check [--mutations M] [--workers N] [--batches K] [--json]
                        [--inject-skip-bump | --inject-skip-invalidate |
                         --inject-replay-arrival | --inject-skip-fold]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("cosmos-det: {msg}\n{USAGE}");
    ExitCode::from(2)
}
