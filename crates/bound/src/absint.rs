//! The value-level abstraction domain: per-attribute intervals.
//!
//! An [`AbsTuple`] over-approximates the set of tuples that can flow
//! past a point in the network: attribute `a ↦ I` means every such
//! tuple's `a` lies in `I`; attributes absent from the map are
//! unconstrained. The abstraction of a *filter list* (a disjunction of
//! conjunctions, empty = accept-all) is the per-attribute hull across
//! its satisfiable disjuncts, with each disjunct's intervals extracted
//! from the difference-constraint graph by
//! [`cosmos_cbn::conjunction_range`] — so transitive tightenings like
//! `a ≤ b ∧ b ≤ 3 ⇒ a ≤ 3` are visible to the abstraction even though
//! no atom mentions them directly.
//!
//! `None` is the **empty** abstraction (no tuple can pass), used by
//! `cosmos-verify`'s V6xx family to prove deliveries statically dead:
//! intersecting the abstractions along a dissemination path yields the
//! tuples that can actually arrive, and a disjoint meet at any hop
//! means the subscriber downstream can never receive anything.

use cosmos_cbn::profile::Projection;
use cosmos_cbn::{conjunction_range, Conjunction, Interval};
use std::collections::BTreeMap;

/// An abstract tuple: per-attribute intervals, missing = unconstrained.
pub type AbsTuple = BTreeMap<String, Interval>;

/// Abstraction of a filter list (disjunction; empty list = accept-all).
///
/// Returns `None` iff the list is non-empty and every disjunct is
/// provably unsatisfiable — nothing passes. Otherwise the result maps
/// each attribute constrained in *every* satisfiable disjunct to the
/// hull of its per-disjunct intervals (an attribute free in any
/// disjunct is unconstrained in the disjunction).
pub fn filters_abstraction(filters: &[Conjunction]) -> Option<AbsTuple> {
    if filters.is_empty() {
        return Some(AbsTuple::new());
    }
    let mut acc: Option<AbsTuple> = None;
    for c in filters {
        let Some(range) = conjunction_range(c) else {
            continue; // unsatisfiable disjunct contributes nothing
        };
        acc = Some(match acc {
            None => range,
            Some(prev) => {
                // Keep only attrs constrained on both sides, hulled.
                let mut out = AbsTuple::new();
                for (attr, iv) in &prev {
                    if let Some(other) = range.get(attr) {
                        let hulled = iv.hull(other);
                        if !hulled.is_full() {
                            out.insert(attr.clone(), hulled);
                        }
                    }
                }
                out
            }
        });
    }
    acc
}

/// Meet of two abstractions: per-attribute interval intersection.
/// Returns `None` when some shared attribute's meet is empty — no
/// concrete tuple lies in both abstractions.
pub fn intersect(a: &AbsTuple, b: &AbsTuple) -> Option<AbsTuple> {
    let mut out = a.clone();
    for (attr, iv) in b {
        match out.get_mut(attr) {
            Some(existing) => {
                *existing = existing.intersect(iv);
                if existing.is_empty() {
                    return None;
                }
            }
            None => {
                out.insert(attr.clone(), iv.clone());
            }
        }
    }
    Some(out)
}

/// Restrict an abstraction to the attributes a projection retains.
/// Sound because dropping a column only forgets constraints.
pub fn project(a: &AbsTuple, p: &Projection) -> AbsTuple {
    a.iter()
        .filter(|(attr, _)| p.contains(attr))
        .map(|(attr, iv)| (attr.clone(), iv.clone()))
        .collect()
}

/// Whether two abstractions provably share no concrete tuple.
pub fn is_disjoint(a: &AbsTuple, b: &AbsTuple) -> bool {
    intersect(a, b).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_types::Value;

    fn between(attr: &str, lo: i64, hi: i64) -> Conjunction {
        let mut c = Conjunction::always();
        c.between(attr, lo, hi);
        c
    }

    fn iv(a: &AbsTuple, attr: &str) -> Interval {
        a.get(attr).cloned().unwrap_or_else(Interval::full)
    }

    #[test]
    fn empty_filter_list_is_top() {
        let top = filters_abstraction(&[]).unwrap();
        assert!(top.is_empty());
        // Top meets anything without shrinking it.
        let other = filters_abstraction(&[between("a", 0, 5)]).unwrap();
        assert_eq!(intersect(&top, &other).unwrap(), other);
    }

    #[test]
    fn all_unsat_disjuncts_is_bottom() {
        let mut unsat = between("a", 0, 5);
        unsat.lower("a", 10, false);
        assert!(filters_abstraction(&[unsat.clone()]).is_none());
        assert!(filters_abstraction(&[unsat.clone(), unsat]).is_none());
    }

    #[test]
    fn disjunction_hulls_per_attribute() {
        let f = [between("a", 0, 2), between("a", 8, 10)];
        let a = filters_abstraction(&f).unwrap();
        let hull = iv(&a, "a");
        assert!(hull.contains(&Value::Int(0)));
        assert!(hull.contains(&Value::Int(5))); // hull fills the gap
        assert!(hull.contains(&Value::Int(10)));
        assert!(!hull.contains(&Value::Int(11)));
    }

    #[test]
    fn attr_free_in_one_disjunct_is_unconstrained() {
        let mut both = between("a", 0, 2);
        both.between("b", 0, 1);
        let f = [both, between("a", 1, 3)];
        let a = filters_abstraction(&f).unwrap();
        assert!(a.contains_key("a"));
        assert!(!a.contains_key("b"));
    }

    #[test]
    fn unsat_disjunct_is_ignored_not_poisonous() {
        let mut unsat = between("a", 0, 5);
        unsat.lower("a", 10, false);
        let f = [unsat, between("a", 1, 3)];
        let a = filters_abstraction(&f).unwrap();
        assert!(!iv(&a, "a").contains(&Value::Int(7)));
    }

    #[test]
    fn abstraction_sees_difference_tightening() {
        // a ≤ b ∧ b ∈ [0, 3]  ⇒  a ≤ 3 (no atom says so directly).
        let mut c = Conjunction::always();
        c.diff("a", "b", cosmos_cbn::DiffRange::new(f64::NEG_INFINITY, 0.0));
        c.between("b", 0, 3);
        let a = filters_abstraction(&[c]).unwrap();
        assert!(!iv(&a, "a").contains(&Value::Int(10)));
    }

    #[test]
    fn meet_detects_disjointness() {
        let lo = filters_abstraction(&[between("a", 0, 4)]).unwrap();
        let hi = filters_abstraction(&[between("a", 6, 9)]).unwrap();
        assert!(is_disjoint(&lo, &hi));
        let mid = filters_abstraction(&[between("a", 4, 6)]).unwrap();
        let met = intersect(&lo, &mid).unwrap();
        assert!(met.get("a").unwrap().contains(&Value::Int(4)));
        assert!(!met.get("a").unwrap().contains(&Value::Int(5)));
    }

    #[test]
    fn projection_drops_constraints_soundly() {
        let mut c = between("a", 0, 4);
        c.between("b", 1, 2);
        let a = filters_abstraction(&[c]).unwrap();
        let p = project(&a, &Projection::of(["a"]));
        assert!(p.contains_key("a"));
        assert!(!p.contains_key("b"));
        assert_eq!(project(&a, &Projection::All), a);
    }
}
