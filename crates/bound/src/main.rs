#![forbid(unsafe_code)]
//! `cosmos-bound` CLI: worst-case bound reports for `.cql` files.
//!
//! ```text
//! cosmos-bound --schemas CATALOG [--rate TPS] [--horizon SECS] [--json] FILE...
//! ```
//!
//! Every statement is analyzed against the schema catalog (the
//! `cosmos-lint` catalog format), checked for structural unboundedness
//! (`B01xx`), and — under a uniform rate envelope of `--rate` tuples
//! per second per stream, optionally cut off at `--horizon` seconds —
//! reported with its derived worst-case state and load bounds
//! (`B0201`). `--json` emits one JSON array (the shared
//! [`cosmos_lint::JsonDiagnostic`] form plus a `bounds` object per
//! statement). Exit status: 0 when every statement is admissible,
//! 1 if any error-level finding, 2 on usage/IO problems.

use cosmos_bound::{check_query, query_bounds, Bound, Envelope, QueryBounds, StreamEnvelope};
use cosmos_lint::{codes, Diagnostic, JsonDiagnostic, Severity};
use cosmos_spe::analyze::AnalyzedQuery;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut schemas: Option<String> = None;
    let mut rate = 1.0f64;
    let mut horizon: Option<f64> = None;
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schemas" => match args.next() {
                Some(path) => schemas = Some(path),
                None => return usage("--schemas needs a file argument"),
            },
            "--rate" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => rate = v,
                None => return usage("--rate needs a numeric argument"),
            },
            "--horizon" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => horizon = Some(v),
                None => return usage("--horizon needs a numeric argument"),
            },
            "--json" => json = true,
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag '{other}'"));
            }
            file => files.push(file.to_string()),
        }
    }
    let Some(schemas) = schemas else {
        return usage("--schemas is required (bounds need stream schemas)");
    };
    if files.is_empty() {
        return usage("no input files");
    }

    let catalog = match std::fs::read_to_string(&schemas)
        .map_err(|e| e.to_string())
        .and_then(|text| cosmos_lint::parse_catalog(&text).map_err(|e| e.to_string()))
    {
        Ok(cat) => cat,
        Err(e) => {
            eprintln!("cosmos-bound: {schemas}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut env = Envelope::new();
    for (name, schema) in &catalog {
        env.set(
            name.as_str().into(),
            StreamEnvelope::Rate {
                tuples_per_sec: rate,
                horizon_secs: horizon,
                tuple_bytes: schema.estimated_tuple_bytes() as f64 + TUPLE_HEADER_BYTES,
            },
        );
    }

    let mut errors = 0usize;
    let mut report: Vec<serde_json::Value> = Vec::new();
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cosmos-bound: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        for (n, stmt) in cosmos_cql::split_statements(&text).enumerate() {
            let analyzed = cosmos_cql::parse_query(stmt)
                .map_err(|e| e.message().to_string())
                .and_then(|q| {
                    AnalyzedQuery::analyze(&q, |name| catalog.get(name).cloned())
                        .map_err(|e| e.to_string())
                });
            let (diags, bounds) = match &analyzed {
                Err(e) => (vec![Diagnostic::error(codes::PARSE, e.clone(), None)], None),
                Ok(q) => (check_query(q), Some(query_bounds(q, &env))),
            };
            errors += diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .count();
            if json {
                report.push(serde_json::json!({
                    "file": file,
                    "statement": n + 1,
                    "diagnostics": diags.iter().map(JsonDiagnostic::from).collect::<Vec<_>>(),
                    "bounds": bounds.map(|b| bounds_json(&b)),
                }));
            } else {
                for d in &diags {
                    println!("{file}: statement {}: {}", n + 1, d.render(stmt));
                }
                if let Some(b) = bounds {
                    println!(
                        "{file}: statement {}: note[{}]: state ≤ {} rows / {} bytes, \
                         output ≤ {} rows / {} bytes, intake ≤ {} bytes",
                        n + 1,
                        cosmos_bound::codes::STATE_BOUND,
                        b.state_rows,
                        b.state_bytes,
                        b.output_rows,
                        b.output_bytes,
                        b.intake_bytes,
                    );
                }
            }
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string(&report).expect("report always serializes")
        );
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Wire bytes of a tuple before its values, matching
/// [`cosmos_query::estimate::TUPLE_HEADER_BYTES`].
const TUPLE_HEADER_BYTES: f64 = 10.0;

fn num(b: Bound) -> serde_json::Value {
    match b.as_finite() {
        Some(x) => serde_json::json!(x),
        None => serde_json::Value::Null, // null = unbounded
    }
}

fn bounds_json(b: &QueryBounds) -> serde_json::Value {
    serde_json::json!({
        "state_rows": num(b.state_rows),
        "state_bytes": num(b.state_bytes),
        "buffer_rows": num(b.buffer_rows),
        "agg_window_rows": num(b.agg_window_rows),
        "group_rows": num(b.group_rows),
        "distinct_rows": num(b.distinct_rows),
        "output_rows": num(b.output_rows),
        "output_row_bytes": num(b.output_row_bytes),
        "output_bytes": num(b.output_bytes),
        "intake_bytes": num(b.intake_bytes),
    })
}

const USAGE: &str =
    "usage: cosmos-bound --schemas CATALOG [--rate TPS] [--horizon SECS] [--json] FILE...";

fn usage(msg: &str) -> ExitCode {
    eprintln!("cosmos-bound: {msg}\n{USAGE}");
    ExitCode::from(2)
}
