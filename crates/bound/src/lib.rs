#![forbid(unsafe_code)]
//! `cosmos-bound` — abstract-interpretation resource-bound analysis.
//!
//! The CBN plans deployments from *registered* catalog estimates, but an
//! estimate is not a guarantee: nothing in the lint pass (PR 1) or the
//! whole-network verifier (PR 4) proves that a deployed query cannot
//! grow its executor state or a node's consumed byte load without bound.
//! This crate derives **closed-form worst-case bounds** for both, over
//! an explicit *arrival envelope* abstraction, and detects queries whose
//! state is provably unbounded — before any tuple is published:
//!
//! * [`absint`] — the abstraction domain: per-attribute intervals
//!   extracted from the difference-constraint graph
//!   ([`cosmos_cbn::conjunction_range`]), hulled across filter
//!   disjuncts, intersected along dissemination paths, and projected —
//!   the value-level half of the interpreter, used by `cosmos-verify`'s
//!   V6xx family to prove hop-by-hop abstraction consistency.
//! * [`Envelope`] — the quantitative half: per-stream bounds on total
//!   rows, closed-window occupancy, and tuple width, instantiable from
//!   catalog statistics (capacity planning) or from an observed trace
//!   (the testkit's bound-soundness oracle).
//! * [`query_bounds`] — the bound derivation itself: retained rows and
//!   bytes per executor component (join buffers, aggregate window,
//!   group table, DISTINCT dedup set), output rows/bytes per query, and
//!   per-processor consumed-byte load.
//! * [`check_query`] — the structural unboundedness check behind the
//!   `Cosmos::submit_query` admission gate: error-level `B0xxx`
//!   diagnostics reject a query whose state grows without bound no
//!   matter what the arrival envelope says (see [`codes`]).
//!
//! Every bound is **sound by construction** against the executor's
//! actual retention policy (closed `[τ − w, τ]` windows, group pruning
//! on emptiness, one output row per aggregate arrival), and the testkit
//! re-checks that claim on every sweep seed by instantiating the
//! formulas with the *observed* trace envelope and comparing against
//! measured `cosmos-metrics` counters.

mod analysis;
mod envelope;

pub mod absint;

pub use analysis::{check_query, query_bounds, QueryBounds};
pub use envelope::{Bound, Envelope, StreamEnvelope};

/// Stable diagnostic codes for the bound analysis.
///
/// `B01xx` are structural unboundedness findings (envelope-independent);
/// `B02xx` are informational capacity reports. A code's meaning never
/// changes once published; retired codes are not reused.
pub mod codes {
    /// A multi-stream query joins over an `[Unbounded]` window: its
    /// join buffer retains every arrival of that stream forever.
    pub const UNBOUNDED_JOIN_STATE: &str = "B0101";
    /// An aggregate runs over an `[Unbounded]` window: its window
    /// buffer (and group table) retains every qualifying arrival.
    pub const UNBOUNDED_AGG_WINDOW: &str = "B0102";
    /// A DISTINCT query's dedup set grows with every distinct output
    /// row — bounded only by total input, never evicted.
    pub const DISTINCT_STATE: &str = "B0103";
    /// Informational capacity report: the derived worst-case state and
    /// load bounds for an admitted query (CLI only).
    pub const STATE_BOUND: &str = "B0201";
}
