//! The bound derivation and the structural unboundedness check.
//!
//! Formulas are derived against the executor's actual retention policy
//! (`cosmos_spe::executor`) and proved sound per component:
//!
//! * **Join buffers** — on every arrival the executor evicts strictly
//!   older-than-`τ − w` tuples and keeps the closed boundary, so buffer
//!   `i` holds at most `W(sᵢ, wᵢ)` rows.
//! * **Aggregate window** — same eviction over the single input stream:
//!   at most `W(s₀, w₀)` rows; the group table is pruned the moment a
//!   group's window contribution drains, so `#groups ≤ W(s₀, w₀)` too.
//! * **DISTINCT set** — grows one entry per distinct emitted row:
//!   bounded by the output-row bound.
//! * **Output rows** — non-join queries emit at most one row per
//!   arrival (`N(s₀)`); a join arrival on binding `i` enumerates the
//!   other buffers, so totals are `Σᵢ N(sᵢ) × Πⱼ≠ᵢ W(sⱼ, wⱼ)` (the
//!   per-binding sum makes self-joins, which process each binding of
//!   the same arrival, come out right).
//! * **Output row bytes** — every attribute column is a value of some
//!   bound stream's tuple and output columns are distinct, so the
//!   payload is at most `Σᵢ (B(sᵢ) − header)`; each aggregate column
//!   adds at most `max(8, B(s₀) − header)` (COUNT/SUM/AVG are 8-byte
//!   numerics, MIN/MAX return a stream value).
//! * **Consumed bytes** — a processor ingests, per query assigned to
//!   it, at most every arrival of each referenced stream at full width
//!   (early projection only shrinks tuples, and concurrent merge groups
//!   have disjoint member sets); a user node ingests at most each
//!   resident query's output bytes.

use crate::envelope::{Bound, Envelope};
use cosmos_lint::Diagnostic;
use cosmos_spe::analyze::{AnalyzedQuery, OutputColumn};
use cosmos_types::StreamName;
use std::collections::BTreeSet;

/// Wire bytes of a tuple before its values (stream id + timestamp),
/// matching [`cosmos_types::Tuple::size_bytes`].
const HEADER_BYTES: f64 = 10.0;
/// Wire bytes of a numeric aggregate result (Int/Float).
const NUMERIC_BYTES: f64 = 8.0;

/// Worst-case resource bounds for one query under an [`Envelope`].
/// Row bounds on executor components are exact enough for the testkit
/// oracle to check them against measured state sizes; byte bounds are
/// sound over-approximations of wire sizes.
#[derive(Debug, Clone, Copy)]
pub struct QueryBounds {
    /// Rows retained across all join input buffers.
    pub buffer_rows: Bound,
    /// Rows retained in the aggregate's sliding window.
    pub agg_window_rows: Bound,
    /// Live groups in the aggregate's group table.
    pub group_rows: Bound,
    /// Entries in the DISTINCT dedup set.
    pub distinct_rows: Bound,
    /// Total retained rows (sum of the four components).
    pub state_rows: Bound,
    /// Bytes retained across all executor state.
    pub state_bytes: Bound,
    /// Result rows the query can ever emit.
    pub output_rows: Bound,
    /// Wire bytes of a single result row.
    pub output_row_bytes: Bound,
    /// Total result bytes (`output_rows × output_row_bytes`).
    pub output_bytes: Bound,
    /// Bytes a processor ingests on behalf of this query over its
    /// lifetime (every arrival of each referenced stream, full width).
    pub intake_bytes: Bound,
}

impl QueryBounds {
    /// Whether any retained-state component is unbounded.
    pub fn state_unbounded(&self) -> bool {
        self.state_rows.is_unbounded()
    }
}

/// Payload bytes of a stream's widest tuple (wire size minus header).
fn payload(env: &Envelope, stream: &StreamName) -> Bound {
    match env.tuple_bytes(stream) {
        Bound::Finite(b) => Bound::Finite((b - HEADER_BYTES).max(0.0)),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// Derive the worst-case bounds for `q` under `env`.
pub fn query_bounds(q: &AnalyzedQuery, env: &Envelope) -> QueryBounds {
    let is_join = q.streams.len() > 1;
    let w: Vec<Bound> = q
        .streams
        .iter()
        .map(|b| env.window_rows(&b.stream, b.window))
        .collect();
    let n: Vec<Bound> = q
        .streams
        .iter()
        .map(|b| env.total_rows(&b.stream))
        .collect();
    let bytes: Vec<Bound> = q
        .streams
        .iter()
        .map(|b| env.tuple_bytes(&b.stream))
        .collect();
    let payloads: Vec<Bound> = q.streams.iter().map(|b| payload(env, &b.stream)).collect();

    // Retained rows per executor component.
    let buffer_rows = if is_join {
        w.iter().fold(Bound::ZERO, |acc, &x| acc + x)
    } else {
        Bound::ZERO
    };
    let agg_window_rows = if q.is_aggregate() { w[0] } else { Bound::ZERO };
    // Groups are pruned the moment their window contribution drains, so
    // every live group owns at least one window row.
    let group_rows = agg_window_rows;

    // Output rows.
    let output_rows = if is_join {
        let mut total = Bound::ZERO;
        for (i, &ni) in n.iter().enumerate() {
            let mut per_arrival = Bound::Finite(1.0);
            for (j, &wj) in w.iter().enumerate() {
                if j != i {
                    per_arrival = per_arrival * wj;
                }
            }
            total = total + ni * per_arrival;
        }
        total
    } else {
        // Select-project and aggregates emit at most one row per
        // arrival (DISTINCT only suppresses).
        n[0]
    };
    let distinct_rows = if q.distinct { output_rows } else { Bound::ZERO };
    let state_rows = buffer_rows + agg_window_rows + group_rows + distinct_rows;

    // Output row width.
    let attr_payload = payloads.iter().fold(Bound::ZERO, |acc, &p| acc + p);
    let n_agg_cols = q
        .output
        .iter()
        .filter(|c| matches!(c, OutputColumn::Agg { .. }))
        .count() as f64;
    let agg_col_bytes = match payloads[0] {
        Bound::Finite(p) => Bound::Finite(NUMERIC_BYTES.max(p) * n_agg_cols),
        Bound::Unbounded if n_agg_cols == 0.0 => Bound::ZERO,
        Bound::Unbounded => Bound::Unbounded,
    };
    let output_row_bytes = Bound::Finite(HEADER_BYTES) + attr_payload + agg_col_bytes;
    let output_bytes = output_rows * output_row_bytes;

    // Processor intake: every arrival of each referenced stream, full
    // width (projection only shrinks). Self-joins hand one copy of the
    // arrival to the executor, so count distinct streams once.
    let distinct_streams: BTreeSet<&StreamName> = q.streams.iter().map(|b| &b.stream).collect();
    let intake_bytes = distinct_streams.iter().fold(Bound::ZERO, |acc, s| {
        acc + env.total_rows(s) * env.tuple_bytes(s)
    });

    // Retained bytes, per component: join buffers hold full source
    // tuples; aggregate window entries hold a timestamp plus two value
    // subsets (group key + agg args); groups hold a key plus fixed-size
    // accumulators; the DISTINCT set holds output-row values.
    let mut state_bytes = Bound::ZERO;
    if is_join {
        for (i, &wi) in w.iter().enumerate() {
            state_bytes = state_bytes + wi * bytes[i];
        }
    }
    if q.is_aggregate() {
        let entry = Bound::Finite(NUMERIC_BYTES) + payloads[0] + payloads[0];
        state_bytes = state_bytes + agg_window_rows * entry;
        let group = payloads[0] + Bound::Finite(3.0 * NUMERIC_BYTES * n_agg_cols.max(1.0));
        state_bytes = state_bytes + group_rows * group;
    }
    state_bytes = state_bytes + distinct_rows * output_row_bytes;

    QueryBounds {
        buffer_rows,
        agg_window_rows,
        group_rows,
        distinct_rows,
        state_rows,
        state_bytes,
        output_rows,
        output_row_bytes,
        output_bytes,
        intake_bytes,
    }
}

/// Structural unboundedness check: the envelope-independent findings
/// behind the `Cosmos::submit_query` admission gate. `Error`-level
/// findings mean the executor's retained state provably grows without
/// bound for *any* unbounded input, no matter the arrival envelope.
pub fn check_query(q: &AnalyzedQuery) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if q.streams.len() > 1 {
        for b in &q.streams {
            if b.window.is_infinite() {
                out.push(Diagnostic::error(
                    crate::codes::UNBOUNDED_JOIN_STATE,
                    format!(
                        "join buffer for '{}' ({}) is never evicted under an \
                         [Unbounded] window — retained state grows with every arrival",
                        b.binding, b.stream
                    ),
                    None,
                ));
            }
        }
    }
    if q.is_aggregate() && q.streams[0].window.is_infinite() {
        out.push(Diagnostic::error(
            crate::codes::UNBOUNDED_AGG_WINDOW,
            format!(
                "aggregate over '{}' retains its whole history under an \
                 [Unbounded] window — window and group state grow with every arrival",
                q.streams[0].stream
            ),
            None,
        ));
    }
    if q.distinct {
        out.push(Diagnostic::warning(
            crate::codes::DISTINCT_STATE,
            "DISTINCT dedup state is never evicted — bounded only by total \
             distinct output rows, not by any window"
                .to_string(),
            None,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_cql::parse_query;
    use cosmos_types::{AttrType, Schema};

    fn schema_fn(name: &str) -> Option<Schema> {
        match name {
            "S" | "T" => Some(Schema::of(&[
                ("id", AttrType::Int),
                ("x", AttrType::Float),
                ("timestamp", AttrType::Int),
            ])),
            _ => None,
        }
    }

    fn q(text: &str) -> AnalyzedQuery {
        AnalyzedQuery::analyze(&parse_query(text).unwrap(), schema_fn).unwrap()
    }

    fn env() -> Envelope {
        let mut env = Envelope::new();
        // 11 arrivals per stream, 1 s apart, 34 wire bytes each.
        for s in ["S", "T"] {
            let name = StreamName::from(s);
            for k in 0..11i64 {
                env.record(&name, k * 1000, 34);
            }
        }
        env
    }

    #[test]
    fn select_project_bounds() {
        let b = query_bounds(&q("SELECT id FROM S [Range 5 Second]"), &env());
        assert_eq!(b.state_rows, Bound::ZERO);
        assert_eq!(b.output_rows, Bound::Finite(11.0));
        // header + full payload of S.
        assert_eq!(b.output_row_bytes, Bound::Finite(34.0));
        assert_eq!(b.intake_bytes, Bound::Finite(11.0 * 34.0));
    }

    #[test]
    fn join_bounds_follow_window_occupancy() {
        let b = query_bounds(
            &q(
                "SELECT S.id FROM S [Range 2 Second] S, T [Range 4 Second] T \
                WHERE S.id = T.id",
            ),
            &env(),
        );
        // W(S, 2s) = 3, W(T, 4s) = 5 on the 1 Hz trace.
        assert_eq!(b.buffer_rows, Bound::Finite(8.0));
        // Σᵢ N × Π W over the other side: 11×5 + 11×3.
        assert_eq!(b.output_rows, Bound::Finite(11.0 * 5.0 + 11.0 * 3.0));
        // Both streams ingested at full width.
        assert_eq!(b.intake_bytes, Bound::Finite(2.0 * 11.0 * 34.0));
        assert!(!b.state_unbounded());
    }

    #[test]
    fn self_join_counts_each_binding_but_ingests_once() {
        let b = query_bounds(
            &q(
                "SELECT a.id FROM S [Range 2 Second] a, S [Range 2 Second] b \
                WHERE a.id = b.id",
            ),
            &env(),
        );
        assert_eq!(b.buffer_rows, Bound::Finite(6.0));
        assert_eq!(b.output_rows, Bound::Finite(2.0 * 11.0 * 3.0));
        // One stream, one intake.
        assert_eq!(b.intake_bytes, Bound::Finite(11.0 * 34.0));
    }

    #[test]
    fn aggregate_state_follows_the_window() {
        let b = query_bounds(
            &q("SELECT id, COUNT(*) FROM S [Range 3 Second] GROUP BY id"),
            &env(),
        );
        assert_eq!(b.agg_window_rows, Bound::Finite(4.0));
        assert_eq!(b.group_rows, Bound::Finite(4.0));
        assert_eq!(b.output_rows, Bound::Finite(11.0));
        assert!(!b.state_unbounded());
    }

    #[test]
    fn unknown_streams_are_unbounded_not_wrong() {
        let b = query_bounds(&q("SELECT id FROM S [Now]"), &Envelope::new());
        assert!(b.output_rows.is_unbounded());
        assert!(b.intake_bytes.is_unbounded());
        // No retained state regardless of the envelope.
        assert_eq!(b.state_rows, Bound::ZERO);
    }

    #[test]
    fn unbounded_join_window_is_rejected_structurally() {
        let d = check_query(&q(
            "SELECT S.id FROM S [Unbounded] S, T [Now] T WHERE S.id = T.id",
        ));
        assert!(d
            .iter()
            .any(|d| d.code == crate::codes::UNBOUNDED_JOIN_STATE
                && d.severity == cosmos_lint::Severity::Error));
        // …and the envelope-level bound agrees.
        let b = query_bounds(
            &q("SELECT S.id FROM S [Unbounded] S, T [Now] T WHERE S.id = T.id"),
            &env(),
        );
        assert!(!b.state_unbounded(), "a finite trace still bounds it");
    }

    #[test]
    fn unbounded_aggregate_and_distinct_are_flagged() {
        let d = check_query(&q("SELECT id, COUNT(*) FROM S [Unbounded] GROUP BY id"));
        assert!(d
            .iter()
            .any(|d| d.code == crate::codes::UNBOUNDED_AGG_WINDOW));
        let d = check_query(&q("SELECT DISTINCT id FROM S [Range 5 Second]"));
        assert!(d.iter().all(|d| d.severity != cosmos_lint::Severity::Error));
        assert!(d.iter().any(|d| d.code == crate::codes::DISTINCT_STATE));
        // A plain bounded query is clean.
        assert!(check_query(&q("SELECT id FROM S [Range 5 Second]")).is_empty());
        // A single-stream select over [Unbounded] holds no state: clean.
        assert!(check_query(&q("SELECT id FROM S [Unbounded]")).is_empty());
    }
}
