//! Arrival envelopes and the extended-real bound arithmetic.
//!
//! An [`Envelope`] abstracts what a stream can deliver: how many tuples
//! in total (`N`), how many can coexist inside a closed sliding window
//! of a given width (`W`), and how wide a single tuple can be (`B`).
//! Every quantitative bound in [`crate::query_bounds`] is a closed-form
//! expression over these three per-stream quantities, so the same
//! formulas serve two instantiations:
//!
//! * **Rate envelopes** ([`Envelope::from_catalog`]) — from registered
//!   catalog statistics, for capacity planning and the CLI report.
//! * **Trace envelopes** ([`Envelope::record`]) — from the tuples
//!   actually published, which the testkit's soundness oracle uses so
//!   that measured metrics check the *formulas*, independent of
//!   catalog accuracy.

use cosmos_query::estimate::{StatsCatalog, TUPLE_HEADER_BYTES};
use cosmos_types::{StreamName, TimeDelta};
use std::collections::BTreeMap;
use std::fmt;

/// A worst-case quantity: a finite number or provably unbounded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Bound {
    /// At most this many (rows, bytes, …).
    Finite(f64),
    /// No finite bound is derivable.
    Unbounded,
}

impl Bound {
    /// The zero bound.
    pub const ZERO: Bound = Bound::Finite(0.0);

    /// The finite value, if any.
    pub fn as_finite(self) -> Option<f64> {
        match self {
            Bound::Finite(x) => Some(x),
            Bound::Unbounded => None,
        }
    }

    /// Whether no finite bound exists.
    pub fn is_unbounded(self) -> bool {
        matches!(self, Bound::Unbounded)
    }

    /// Whether a measured value stays within the bound. An unbounded
    /// bound dominates everything.
    pub fn dominates(self, measured: f64) -> bool {
        match self {
            Bound::Finite(x) => measured <= x,
            Bound::Unbounded => true,
        }
    }
}

/// Saturating addition: `∞ + x = ∞`.
impl std::ops::Add for Bound {
    type Output = Bound;

    fn add(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a + b),
            _ => Bound::Unbounded,
        }
    }
}

/// Saturating multiplication with the measure-theoretic zero rule
/// `0 × ∞ = 0`: an empty window contributes nothing even when the other
/// factor is unbounded.
impl std::ops::Mul for Bound {
    type Output = Bound;

    fn mul(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a * b),
            (Bound::Finite(x), Bound::Unbounded) | (Bound::Unbounded, Bound::Finite(x))
                if x == 0.0 =>
            {
                Bound::ZERO
            }
            _ => Bound::Unbounded,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(x) => write!(f, "{x}"),
            Bound::Unbounded => f.write_str("∞"),
        }
    }
}

/// What one stream can deliver, in one of two precisions.
#[derive(Debug, Clone)]
pub enum StreamEnvelope {
    /// Catalog abstraction: a mean arrival rate, an optional finite
    /// horizon, and an estimated per-tuple width.
    Rate {
        /// Mean arrivals per second.
        tuples_per_sec: f64,
        /// Total lifetime in seconds, when the deployment is finite.
        horizon_secs: Option<f64>,
        /// Estimated wire bytes per tuple (header included).
        tuple_bytes: f64,
    },
    /// Observed trace: per-tuple arrival timestamps (in publish order)
    /// and the widest tuple seen.
    Trace {
        /// Arrival timestamps in milliseconds, publish order.
        timestamps: Vec<i64>,
        /// Largest observed [`cosmos_types::Tuple::size_bytes`].
        max_tuple_bytes: u64,
        /// Whether the timestamps are nondecreasing (the executor's
        /// arrival contract); a violation degrades `W` to `N`.
        nondecreasing: bool,
    },
}

impl StreamEnvelope {
    /// `N`: total rows the stream can ever deliver.
    fn total_rows(&self) -> Bound {
        match self {
            StreamEnvelope::Rate {
                tuples_per_sec,
                horizon_secs,
                ..
            } => match horizon_secs {
                Some(h) => Bound::Finite((tuples_per_sec * h).ceil() + 1.0),
                None => Bound::Unbounded,
            },
            StreamEnvelope::Trace { timestamps, .. } => Bound::Finite(timestamps.len() as f64),
        }
    }

    /// `W(w)`: the most rows that can coexist in a closed window
    /// `[τ − w, τ]` anchored at any arrival τ, widened by the declared
    /// reorder `slack` (see [`Envelope::set_reorder_slack`]).
    fn window_rows(&self, w: TimeDelta, slack: Option<TimeDelta>) -> Bound {
        if w.is_infinite() {
            return self.total_rows();
        }
        let w_ms = match slack {
            Some(s) => w.millis().saturating_add(s.millis()),
            None => w.millis(),
        };
        // max over k of #{j ≤ k : ts_j ≥ ts_k − w} — exactly the
        // executor's eviction rule (strictly-older tuples are popped,
        // the closed boundary is retained).
        let scan = |sorted_ts: &[i64]| {
            let (mut lo, mut best) = (0usize, 0usize);
            for (k, &ts) in sorted_ts.iter().enumerate() {
                while sorted_ts[lo] < ts - w_ms {
                    lo += 1;
                }
                best = best.max(k - lo + 1);
            }
            Bound::Finite(best as f64)
        };
        match self {
            StreamEnvelope::Rate { tuples_per_sec, .. } => {
                // Mean-rate occupancy plus the anchoring arrival itself.
                Bound::Finite((tuples_per_sec * (w_ms as f64 / 1_000.0)).ceil() + 1.0)
            }
            StreamEnvelope::Trace {
                timestamps,
                nondecreasing,
                ..
            } => {
                if *nondecreasing {
                    scan(timestamps)
                } else if slack.is_some() {
                    // With a declared reorder slack the executor
                    // processes arrivals in timestamp order (staged
                    // behind the watermark frontier), so the sorted
                    // trace *is* the processing order and the slack
                    // covers grace-window retention.
                    let mut sorted = timestamps.clone();
                    sorted.sort_unstable();
                    scan(&sorted)
                } else {
                    // Out-of-order arrivals with no declared slack break
                    // the two-pointer scan; the total is always sound.
                    Bound::Finite(timestamps.len() as f64)
                }
            }
        }
    }

    /// `B`: the widest tuple the stream can deliver, wire bytes.
    fn tuple_bytes(&self) -> Bound {
        match self {
            StreamEnvelope::Rate { tuple_bytes, .. } => Bound::Finite(*tuple_bytes),
            StreamEnvelope::Trace {
                max_tuple_bytes, ..
            } => Bound::Finite(*max_tuple_bytes as f64),
        }
    }
}

/// Per-stream arrival envelopes. Streams absent from the envelope have
/// no derivable bound: every query over them reports [`Bound::Unbounded`]
/// rather than a wrong number.
#[derive(Debug, Clone, Default)]
pub struct Envelope {
    streams: BTreeMap<StreamName, StreamEnvelope>,
    /// Declared maximum timestamp displacement of arrivals (disorder
    /// mode); widens every window-occupancy answer.
    reorder_slack: Option<TimeDelta>,
}

impl Envelope {
    /// An empty envelope (everything unbounded).
    pub fn new() -> Envelope {
        Envelope::default()
    }

    /// Declare that arrivals may be displaced by up to `slack` of
    /// application time (the disorder bound). Two effects, both needed
    /// for the bounds to stay sound out of order: every
    /// window-occupancy query is answered for `w + slack` — covering
    /// grace-window retention (revision history) beside the live window
    /// — and non-monotone traces are evaluated in *sorted* order
    /// instead of degrading to the total, because the staged executor
    /// processes arrivals in timestamp order regardless of publish
    /// order. `None` (the default) restores the in-order behavior.
    pub fn set_reorder_slack(&mut self, slack: Option<TimeDelta>) {
        self.reorder_slack = slack;
    }

    /// The declared reorder slack, if any.
    pub fn reorder_slack(&self) -> Option<TimeDelta> {
        self.reorder_slack
    }

    /// A rate envelope over every stream of a statistics catalog, using
    /// the registered mean rates and estimated schema widths. With
    /// `horizon_secs: None`, total-row bounds are unbounded and only
    /// window-state bounds are finite — the steady-state view.
    pub fn from_catalog(catalog: &StatsCatalog, horizon_secs: Option<f64>) -> Envelope {
        let mut env = Envelope::new();
        for stream in catalog.streams() {
            let rate = catalog.stats(stream).map(|s| s.rate).unwrap_or(0.0);
            let bytes = catalog
                .schema(stream)
                .map_or(0.0, |s| s.estimated_tuple_bytes() as f64)
                + TUPLE_HEADER_BYTES;
            env.set(
                stream.clone(),
                StreamEnvelope::Rate {
                    tuples_per_sec: rate,
                    horizon_secs,
                    tuple_bytes: bytes,
                },
            );
        }
        env
    }

    /// Install or replace one stream's envelope.
    pub fn set(&mut self, stream: StreamName, envelope: StreamEnvelope) {
        self.streams.insert(stream, envelope);
    }

    /// Append one observed arrival to a stream's trace envelope
    /// (creating it on first use). `size_bytes` is the published
    /// tuple's wire size.
    pub fn record(&mut self, stream: &StreamName, ts_millis: i64, size_bytes: usize) {
        let e = self
            .streams
            .entry(stream.clone())
            .or_insert(StreamEnvelope::Trace {
                timestamps: Vec::new(),
                max_tuple_bytes: 0,
                nondecreasing: true,
            });
        match e {
            StreamEnvelope::Trace {
                timestamps,
                max_tuple_bytes,
                nondecreasing,
            } => {
                if timestamps.last().is_some_and(|&last| ts_millis < last) {
                    *nondecreasing = false;
                }
                timestamps.push(ts_millis);
                *max_tuple_bytes = (*max_tuple_bytes).max(size_bytes as u64);
            }
            StreamEnvelope::Rate { .. } => {
                // Mixing a trace into a rate envelope is a caller bug;
                // keep the rate abstraction (it is not oracle-checked).
            }
        }
    }

    /// `N(s)`: total rows stream `s` can ever deliver.
    pub fn total_rows(&self, stream: &StreamName) -> Bound {
        self.streams
            .get(stream)
            .map_or(Bound::Unbounded, StreamEnvelope::total_rows)
    }

    /// `W(s, w)`: most rows of `s` coexisting in a closed window of
    /// width `w`.
    pub fn window_rows(&self, stream: &StreamName, w: TimeDelta) -> Bound {
        self.streams
            .get(stream)
            .map_or(Bound::Unbounded, |e| e.window_rows(w, self.reorder_slack))
    }

    /// `B(s)`: widest tuple of `s`, wire bytes.
    pub fn tuple_bytes(&self, stream: &StreamName) -> Bound {
        self.streams
            .get(stream)
            .map_or(Bound::Unbounded, StreamEnvelope::tuple_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_arithmetic_saturates_with_zero_rule() {
        let two = Bound::Finite(2.0);
        assert_eq!(two + Bound::Finite(3.0), Bound::Finite(5.0));
        assert_eq!(two + Bound::Unbounded, Bound::Unbounded);
        assert_eq!(two * Bound::Unbounded, Bound::Unbounded);
        assert_eq!(Bound::ZERO * Bound::Unbounded, Bound::ZERO);
        assert_eq!(Bound::Unbounded * Bound::ZERO, Bound::ZERO);
        assert!(Bound::Unbounded.dominates(1e18));
        assert!(two.dominates(2.0));
        assert!(!two.dominates(2.5));
    }

    #[test]
    fn trace_window_occupancy_is_exact_on_monotone_arrivals() {
        let mut env = Envelope::new();
        let s = StreamName::from("S");
        for (ts, bytes) in [(0, 20), (100, 30), (150, 25), (1000, 20)] {
            env.record(&s, ts, bytes);
        }
        assert_eq!(env.total_rows(&s), Bound::Finite(4.0));
        assert_eq!(env.tuple_bytes(&s), Bound::Finite(30.0));
        // w = 100 ms: {0,100} and {100,150} both fit; {0,100,150} not.
        assert_eq!(
            env.window_rows(&s, TimeDelta::from_millis(100)),
            Bound::Finite(2.0)
        );
        // Closed boundary: ts 0 is retained at τ = 100 with w = 100.
        assert_eq!(
            env.window_rows(&s, TimeDelta::from_millis(150)),
            Bound::Finite(3.0)
        );
        // Now-window: no two arrivals share a timestamp.
        assert_eq!(env.window_rows(&s, TimeDelta::ZERO), Bound::Finite(1.0));
        assert_eq!(env.window_rows(&s, TimeDelta::INFINITE), Bound::Finite(4.0));
    }

    #[test]
    fn out_of_order_trace_degrades_to_total() {
        let mut env = Envelope::new();
        let s = StreamName::from("S");
        for ts in [0, 500, 100] {
            env.record(&s, ts, 20);
        }
        assert_eq!(
            env.window_rows(&s, TimeDelta::from_millis(1)),
            Bound::Finite(3.0)
        );
    }

    #[test]
    fn reorder_slack_tightens_disordered_traces() {
        let mut env = Envelope::new();
        let s = StreamName::from("S");
        for ts in [0, 500, 100] {
            env.record(&s, ts, 20);
        }
        env.set_reorder_slack(Some(TimeDelta::from_millis(400)));
        assert_eq!(env.reorder_slack(), Some(TimeDelta::from_millis(400)));
        // Sorted processing order is [0, 100, 500]; width 1 + 400 fits
        // {0, 100} and {100, 500} but never all three — tighter than
        // the slack-free degradation to the total (3).
        assert_eq!(
            env.window_rows(&s, TimeDelta::from_millis(1)),
            Bound::Finite(2.0)
        );
        // Clearing the slack restores the degraded answer.
        env.set_reorder_slack(None);
        assert_eq!(
            env.window_rows(&s, TimeDelta::from_millis(1)),
            Bound::Finite(3.0)
        );
    }

    #[test]
    fn reorder_slack_widens_monotone_windows_for_grace_retention() {
        let mut env = Envelope::new();
        let s = StreamName::from("S");
        for ts in [0, 100, 150, 1000] {
            env.record(&s, ts, 20);
        }
        // In order, w = 100 holds at most 2 rows; a 50 ms grace window
        // can retain {0, 100, 150} together.
        env.set_reorder_slack(Some(TimeDelta::from_millis(50)));
        assert_eq!(
            env.window_rows(&s, TimeDelta::from_millis(100)),
            Bound::Finite(3.0)
        );
    }

    #[test]
    fn unknown_stream_is_unbounded() {
        let env = Envelope::new();
        let s = StreamName::from("nope");
        assert!(env.total_rows(&s).is_unbounded());
        assert!(env.window_rows(&s, TimeDelta::ZERO).is_unbounded());
        assert!(env.tuple_bytes(&s).is_unbounded());
    }
}
