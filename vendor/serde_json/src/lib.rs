//! Workspace-local stand-in for the `serde_json` crate.
//!
//! The build environment has no network access, so the real crates.io
//! dependency can never be fetched. The vendored `serde` stand-in
//! already serializes through a JSON-renderable [`serde::Content`]
//! tree, so this crate is a thin facade: [`Value`] *is* that tree, and
//! [`to_string`]/[`from_str`] render and parse it. See
//! `vendor/README.md` for the vendoring policy.

use std::fmt;

/// A JSON value (the vendored serde's content tree).
pub type Value = serde::Content;

/// A serialization or deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(serde::DeError);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e)
    }
}

/// Serialize a value to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    Ok(value.to_content().to_json())
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let content = Value::parse_json(s)?;
    Ok(T::from_content(&content)?)
}

/// Convert any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Infallible conversion used by the `json!` macro (callers of the
/// macro need not depend on `serde` directly).
#[doc(hidden)]
pub fn __to_content<T: serde::Serialize>(value: &T) -> Value {
    value.to_content()
}

/// Build a [`Value`] from JSON-like syntax.
///
/// Supports `null`, arrays of expressions, flat objects with
/// string-literal keys and expression values, and bare expressions
/// (anything implementing the vendored `serde::Serialize`). Nested
/// object literals must be built with nested `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Seq(vec![ $($crate::__to_content(&$elem)),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Map(vec![ $((
            $crate::Value::Str($key.to_string()),
            $crate::__to_content(&$val),
        )),* ])
    };
    ($other:expr) => { $crate::__to_content(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_objects() {
        let label = "uniform";
        let v = json!({
            "distribution": label,
            "queries": 128usize,
            "ratio": 0.25,
            "ok": true,
        });
        let s = v.to_string();
        assert_eq!(
            s,
            r#"{"distribution":"uniform","queries":128,"ratio":0.25,"ok":true}"#
        );
    }

    #[test]
    fn json_macro_misc() {
        assert_eq!(json!(null).to_string(), "null");
        assert_eq!(json!([1, 2, 3]).to_string(), "[1,2,3]");
        assert_eq!(json!("x").to_string(), "\"x\"");
        assert_eq!(json!({}).to_string(), "{}");
    }

    #[test]
    fn to_string_from_str_roundtrip() {
        let v = vec![1i64, -5, 42];
        let s = to_string(&v).unwrap();
        let back: Vec<i64> = from_str(&s).unwrap();
        assert_eq!(back, v);
        assert!(from_str::<Vec<i64>>("[1,").is_err());
    }
}
