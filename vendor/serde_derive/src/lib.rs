//! Workspace-local stand-in for the `serde_derive` crate.
//!
//! Generates `Serialize`/`Deserialize` impls for the vendored `serde`
//! stand-in (`to_content`/`from_content` against a `Content` tree).
//! The real serde_derive depends on `syn`/`quote`, which cannot be
//! fetched in this offline environment, so this implementation parses
//! the item's `TokenStream` by hand and emits generated code as source
//! text parsed back into a `TokenStream`.
//!
//! Supported shapes (everything the workspace derives on): unit,
//! tuple, and named-field structs, and enums whose variants are unit,
//! tuple, or named-field — all without generic parameters. Enum wire
//! layout follows serde's externally-tagged convention: unit variants
//! serialize as the variant-name string, payload variants as a
//! single-entry map from variant name to payload. Container/field
//! attributes (`#[serde(...)]`) are not supported and are rejected so
//! they cannot be silently ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field list.
#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derive `serde::Serialize` (the vendored stand-in trait).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => serialize_struct_body(name, fields),
        Item::Enum { name, variants } => serialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    out.parse().expect("generated Serialize impl should parse")
}

/// Derive `serde::Deserialize` (the vendored stand-in trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::Struct { name, fields } => deserialize_struct_body(name, fields),
        Item::Enum { name, variants } => deserialize_enum_body(name, variants),
    };
    let name = item_name(&item);
    let out = format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_content(\n\
                 __c: &::serde::Content,\n\
             ) -> ::core::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    );
    out.parse()
        .expect("generated Deserialize impl should parse")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    }
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected 'struct' or 'enum', found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stand-in does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("unexpected enum body for `{name}`: {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("cannot derive serde traits for '{other}' items"),
    }
}

/// Skip leading `#[...]` attributes and `pub`/`pub(...)` visibility,
/// rejecting `#[serde(...)]` which this stand-in cannot honour.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let attr = g.stream().to_string();
                        if attr.starts_with("serde") {
                            panic!(
                                "#[serde(...)] attributes are not supported by the \
                                 vendored serde_derive stand-in (found `{attr}`)"
                            );
                        }
                    }
                    other => panic!("malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` field lists, skipping types (angle-bracket
/// aware so commas inside generics don't split fields).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return fields,
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_type_until_comma(&mut tokens);
    }
}

/// Advance past a type, stopping after the next top-level `,` (or end).
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0usize;
    for tok in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Count the fields of a tuple struct/variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut angle_depth = 0usize;
    let mut commas = 0usize;
    let mut any = false;
    for tok in body {
        any = true;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                ',' if angle_depth == 0 => commas += 1,
                _ => {}
            }
        }
    }
    if !any {
        0
    } else {
        commas + 1
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => return variants,
            other => panic!("expected variant name, found {other:?}"),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let named = parse_named_fields(g.stream());
                tokens.next();
                Fields::Named(named)
            }
            _ => Fields::Unit,
        };
        // Consume the trailing comma, if any.
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        } else if let Some(tok) = tokens.peek() {
            panic!("unexpected token after variant `{name}`: {tok:?}");
        }
        variants.push(Variant { name, fields });
    }
}

// ---------------------------------------------------------------------------
// Code generation (emitted as source text)
// ---------------------------------------------------------------------------

fn serialize_struct_body(_name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => "::serde::Content::Null".to_string(),
        // Newtype structs are transparent, matching serde's layout.
        Fields::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Content::Seq(vec![{items}])")
        }
        Fields::Named(names) => {
            let entries = names
                .iter()
                .map(|f| {
                    format!(
                        "(::serde::Content::Str(\"{f}\".to_string()), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Content::Map(vec![{entries}])")
        }
    }
}

fn deserialize_struct_body(name: &str, fields: &Fields) -> String {
    match fields {
        Fields::Unit => format!("{{ let _ = __c; Ok({name}) }}"),
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(__c)?))")
        }
        Fields::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{ let __items = ::serde::content_seq(__c, {n})?; \
                 Ok({name}({items})) }}"
            )
        }
        Fields::Named(names) => {
            let inits = names
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(\
                         ::serde::map_get(__c, \"{f}\")?)?"
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("Ok({name} {{ {inits} }})")
        }
    }
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let arms = variants
        .iter()
        .map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => format!(
                    "{name}::{vname} => \
                     ::serde::Content::Str(\"{vname}\".to_string())"
                ),
                Fields::Tuple(1) => format!(
                    "{name}::{vname}(__f0) => ::serde::Content::Map(vec![(\
                     ::serde::Content::Str(\"{vname}\".to_string()), \
                     ::serde::Serialize::to_content(__f0))])"
                ),
                Fields::Tuple(n) => {
                    let binds = (0..*n)
                        .map(|i| format!("__f{i}"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    let items = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "{name}::{vname}({binds}) => ::serde::Content::Map(vec![(\
                         ::serde::Content::Str(\"{vname}\".to_string()), \
                         ::serde::Content::Seq(vec![{items}]))])"
                    )
                }
                Fields::Named(fields) => {
                    let binds = fields.join(", ");
                    let entries = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::serde::Content::Str(\"{f}\".to_string()), \
                                 ::serde::Serialize::to_content({f}))"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!(
                        "{name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![(\
                         ::serde::Content::Str(\"{vname}\".to_string()), \
                         ::serde::Content::Map(vec![{entries}]))])"
                    )
                }
            }
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!("match self {{\n{arms}\n}}")
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.fields, Fields::Unit))
        .map(|v| format!("\"{0}\" => Ok({name}::{0}),", v.name))
        .collect::<String>();
    let payload_arms = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                Fields::Unit => None,
                Fields::Tuple(1) => Some(format!(
                    "Some(\"{vname}\") => \
                     Ok({name}::{vname}(::serde::Deserialize::from_content(__v)?)),"
                )),
                Fields::Tuple(n) => {
                    let items = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                        .collect::<Vec<_>>()
                        .join(", ");
                    Some(format!(
                        "Some(\"{vname}\") => {{ \
                         let __items = ::serde::content_seq(__v, {n})?; \
                         Ok({name}::{vname}({items})) }},"
                    ))
                }
                Fields::Named(fields) => {
                    let inits = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_content(\
                                 ::serde::map_get(__v, \"{f}\")?)?"
                            )
                        })
                        .collect::<Vec<_>>()
                        .join(", ");
                    Some(format!(
                        "Some(\"{vname}\") => Ok({name}::{vname} {{ {inits} }}),"
                    ))
                }
            }
        })
        .collect::<String>();
    format!(
        "match __c {{\n\
             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => Err(::serde::DeError::custom(format!(\n\
                     \"unknown variant '{{__other}}' of {name}\"\n\
                 ))),\n\
             }},\n\
             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 match __k.as_str() {{\n\
                     {payload_arms}\n\
                     __other => Err(::serde::DeError::custom(format!(\n\
                         \"unknown variant {{__other:?}} of {name}\"\n\
                     ))),\n\
                 }}\n\
             }}\n\
             __other => Err(::serde::DeError::custom(format!(\n\
                 \"expected {name}, found {{__other}}\"\n\
             ))),\n\
         }}"
    )
}
