//! Workspace-local stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real crates.io
//! dependency can never be fetched. This crate keeps the benchmark
//! harness API the workspace's benches use (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `BenchmarkId`, `Throughput`,
//! `black_box`) and implements a simple wall-clock runner: each
//! benchmark is warmed up, then timed over enough iterations to fill a
//! short measurement window, and the mean iteration time (plus
//! throughput, when declared) is printed. No statistical analysis or
//! HTML reports. See `vendor/README.md` for the vendoring policy.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared per-iteration workload, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark name is expected.
pub trait IntoBenchmarkId {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this measurement batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        let label = id.into_label();
        run_benchmark(&label, None, self.measurement_time, f);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in's measurement
    /// window is fixed, so the sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_label());
        run_benchmark(&label, self.throughput, self.criterion.measurement_time, f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    window: Duration,
    mut f: F,
) {
    // Calibrate: run single iterations until we know roughly how long
    // one takes (also serves as warm-up).
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (window.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed / iters.max(1) as u32;

    let rate = throughput.map(|t| {
        let per_sec = |n: u64| n as f64 / per_iter.as_secs_f64().max(1e-12);
        match t {
            Throughput::Elements(n) => format!(" ({:.3e} elem/s)", per_sec(n)),
            Throughput::Bytes(n) => format!(" ({:.3e} B/s)", per_sec(n)),
        }
    });
    println!(
        "bench: {label:<50} {per_iter:>12?}/iter over {iters} iters{}",
        rate.unwrap_or_default()
    );
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion {
            measurement_time: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.throughput(Throughput::Elements(100));
            group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &n| {
                b.iter(|| {
                    ran += 1;
                    (0..n).sum::<u64>()
                })
            });
            group.bench_function("plain", |b| b.iter(|| black_box(2 + 2)));
            group.finish();
        }
        assert!(ran > 0);
        c.bench_function("standalone", |b| b.iter(|| black_box(1)));
    }

    criterion_group!(test_group, noop_bench);
    criterion_main!(test_main_entry);

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| ()));
    }

    fn test_main_entry() {
        // Referenced by criterion_main! expansion above to prove the
        // macro compiles; not executed as part of the test suite.
    }

    #[test]
    fn macros_compile() {
        let _ = test_group as fn();
        let _ = main as fn();
    }
}
