//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the real crates.io
//! dependency can never be fetched. This crate reimplements the subset
//! of the rand 0.8 API the workspace uses: the [`Rng`] trait with
//! `gen`, `gen_range` and `gen_bool`, [`SeedableRng::seed_from_u64`],
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a given seed, statistically solid for
//! simulation workloads, and explicitly **not** cryptographic. See
//! `vendor/README.md` for the vendoring policy.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the "standard" distribution
/// (the `rng.gen()` shorthand).
pub trait Standard: Sized {
    /// Sample a value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*}
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `gen_range` accepts (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*}
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Uniform integer in `[0, span)` (`span > 0`) via Lemire-style rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Rejection sampling over the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

impl SampleRange<f32> for Range<f32> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

/// The raw entropy source behind [`Rng`].
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random-value methods (the rand 0.8 `Rng` trait subset).
pub trait Rng: RngCore {
    /// Sample from the standard distribution for `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Deterministic per seed; not cryptographic.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0..=4u32);
            assert!(i <= 4);
            let n: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&n));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&heads), "heads={heads}");
    }

    #[test]
    fn standard_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn works_through_mut_ref_generics() {
        fn takes_rng<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(takes_rng(&mut rng) < 10);
    }
}
