//! Compact JSON rendering and parsing for [`Content`] trees.
//!
//! Lives inside the serde stand-in (rather than the vendored
//! `serde_json`) so that non-string map keys can round-trip: JSON object
//! keys must be strings, so such keys are rendered as JSON-encoded
//! strings and re-parsed on the way out by [`crate::content_seq`].

use crate::{Content, DeError};

pub(crate) fn render(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(i) => out.push_str(&i.to_string()),
        Content::UInt(u) => out.push_str(&u.to_string()),
        Content::Float(f) => {
            if f.is_finite() {
                // Rust's Display for f64 is the shortest representation
                // that round-trips, and never uses exponent notation.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => render_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match k {
                    Content::Str(s) => render_string(s, out),
                    // JSON object keys must be strings: render the key
                    // as JSON, then encode that document as a string.
                    other => render_string(&other.to_json(), out),
                }
                out.push(':');
                render(v, out);
            }
            out.push('}');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn parse(src: &str) -> Result<Content, DeError> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(DeError::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), DeError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(DeError::custom(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), DeError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(DeError::custom(format!(
                "expected '{lit}' at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Content, DeError> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Content::Null),
            Some(b't') => self.eat_literal("true").map(|()| Content::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.seq(),
            Some(b'{') => self.map(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(DeError::custom(format!(
                "unexpected character '{}' at byte {}",
                other as char, self.pos
            ))),
            None => Err(DeError::custom("unexpected end of input")),
        }
    }

    fn seq(&mut self) -> Result<Content, DeError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(DeError::custom(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Content, DeError> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(DeError::custom(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, DeError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            // Safe: we started inside a str and only stopped on ASCII.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| DeError::custom("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| DeError::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_literal("\\u")?;
                                let lo = self.hex4()?;
                                let code = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(ch.ok_or_else(|| DeError::custom("invalid unicode escape"))?);
                        }
                        other => {
                            return Err(DeError::custom(format!(
                                "invalid escape '\\{}'",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(DeError::custom("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, DeError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| DeError::custom("truncated unicode escape"))?;
        let s =
            std::str::from_utf8(slice).map_err(|_| DeError::custom("invalid unicode escape"))?;
        let v =
            u32::from_str_radix(s, 16).map_err(|_| DeError::custom("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, DeError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| DeError::custom("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Content::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Content::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Content::Float)
            .map_err(|_| DeError::custom(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(c: Content) {
        let rendered = c.to_json();
        let parsed = Content::parse_json(&rendered).unwrap();
        assert_eq!(parsed, c, "via {rendered}");
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(Content::Null);
        roundtrip(Content::Bool(true));
        roundtrip(Content::Int(-42));
        roundtrip(Content::Int(i64::MIN));
        roundtrip(Content::UInt(u64::MAX));
        roundtrip(Content::Float(1.5));
        roundtrip(Content::Float(-0.000123));
        roundtrip(Content::Str("he\"llo\\\n\tworld \u{1F600} é".into()));
    }

    #[test]
    fn integral_float_parses_as_int() {
        // Rendered integral floats lose the ".0" marker; f64's
        // Deserialize accepts Int, so values still round-trip.
        let parsed = Content::parse_json(&Content::Float(3.0).to_json()).unwrap();
        assert_eq!(parsed, Content::Int(3));
    }

    #[test]
    fn nested_roundtrip() {
        roundtrip(Content::Map(vec![
            (
                Content::Str("items".into()),
                Content::Seq(vec![
                    Content::Int(1),
                    Content::Null,
                    Content::Str("x".into()),
                ]),
            ),
            (Content::Str("empty".into()), Content::Seq(vec![])),
            (Content::Str("nested".into()), Content::Map(vec![])),
        ]));
    }

    #[test]
    fn non_string_keys_round_trip_through_strings() {
        let m = Content::Map(vec![(
            Content::Seq(vec![Content::Str("a".into()), Content::Str("b".into())]),
            Content::Int(1),
        )]);
        let parsed = Content::parse_json(&m.to_json()).unwrap();
        // Keys come back as strings holding JSON...
        let Content::Map(entries) = &parsed else {
            panic!("expected map")
        };
        let key = entries[0].0.as_str().unwrap();
        // ...which content_seq re-parses.
        let items = crate::content_seq(&Content::Str(key.into()), 2).unwrap();
        assert_eq!(items[0], Content::Str("a".into()));
        assert_eq!(items[1], Content::Str("b".into()));
    }

    #[test]
    fn parse_errors() {
        assert!(Content::parse_json("").is_err());
        assert!(Content::parse_json("[1,").is_err());
        assert!(Content::parse_json("{\"a\"}").is_err());
        assert!(Content::parse_json("1 2").is_err());
        assert!(Content::parse_json("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let parsed = Content::parse_json("  { \"a\" : [ 1 , 2 ] }  ").unwrap();
        assert_eq!(
            parsed,
            Content::Map(vec![(
                Content::Str("a".into()),
                Content::Seq(vec![Content::Int(1), Content::Int(2)])
            )])
        );
    }
}
