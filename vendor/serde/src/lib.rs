//! Workspace-local stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real crates.io
//! dependency can never be fetched. This crate keeps the parts of the
//! serde surface the workspace relies on — `#[derive(Serialize,
//! Deserialize)]` and the trait names — while replacing serde's
//! visitor-based architecture with a much smaller design: values
//! serialize into a [`Content`] tree, and deserialize back out of one.
//! `serde_json` (also vendored) renders and parses `Content` as JSON.
//!
//! The derive macros live in the companion `serde_derive` proc-macro
//! crate and generate `to_content`/`from_content` implementations with
//! serde's externally-tagged enum layout, so the wire format looks like
//! what real serde_json would produce for the same types. See
//! `vendor/README.md` for the vendoring policy.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

mod json;

/// A self-describing value tree — the intermediate representation every
/// serializable type converts to and from.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A double-precision float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered key/value map (keys need not be strings).
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Render as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        json::render(self, &mut out);
        out
    }

    /// Parse a JSON document.
    pub fn parse_json(s: &str) -> Result<Content, DeError> {
        json::parse(s)
    }
}

impl fmt::Display for Content {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_json())
    }
}

/// A deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from a message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can convert themselves into a [`Content`] tree.
pub trait Serialize {
    /// Serialize `self` into a content tree.
    fn to_content(&self) -> Content;
}

/// Types that can be reconstructed from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Deserialize a value from a content tree.
    fn from_content(c: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Helpers used by derive-generated code (public but doc-hidden).
// ---------------------------------------------------------------------------

/// Look up a field by name in a map content node.
#[doc(hidden)]
pub fn map_get<'a>(c: &'a Content, key: &str) -> Result<&'a Content, DeError> {
    match c {
        Content::Map(entries) => entries
            .iter()
            .find(|(k, _)| k.as_str() == Some(key))
            .map(|(_, v)| v)
            .ok_or_else(|| DeError::custom(format!("missing field '{key}'"))),
        other => Err(DeError::custom(format!(
            "expected map with field '{key}', found {other}"
        ))),
    }
}

/// View a content node as a sequence of exactly `n` elements.
///
/// A string node is re-parsed as JSON first: map *keys* are rendered as
/// JSON-encoded strings when they are not plain strings (JSON object
/// keys must be strings), and this is where they round-trip back.
#[doc(hidden)]
pub fn content_seq(c: &Content, n: usize) -> Result<Vec<Content>, DeError> {
    let items = match c {
        Content::Seq(items) => items.clone(),
        Content::Str(s) => match Content::parse_json(s)? {
            Content::Seq(items) => items,
            other => {
                return Err(DeError::custom(format!(
                    "expected sequence, found string {other}"
                )))
            }
        },
        other => Err(DeError::custom(format!("expected sequence, found {other}")))?,
    };
    if items.len() != n {
        return Err(DeError::custom(format!(
            "expected sequence of {n} elements, found {}",
            items.len()
        )));
    }
    Ok(items)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<bool, DeError> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other}"))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i128;
                if let Ok(i) = i64::try_from(v) {
                    Content::Int(i)
                } else {
                    Content::UInt(*self as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<$t, DeError> {
                let out = match c {
                    Content::Int(i) => <$t>::try_from(*i).ok(),
                    Content::UInt(u) => <$t>::try_from(*u).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    DeError::custom(format!(
                        "expected {}, found {c}", stringify!($t)
                    ))
                })
            }
        }
    )*}
}
impl_serde_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(c: &Content) -> Result<f64, DeError> {
        match c {
            Content::Float(f) => Ok(*f),
            Content::Int(i) => Ok(*i as f64),
            Content::UInt(u) => Ok(*u as f64),
            other => Err(DeError::custom(format!("expected float, found {other}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_content(c: &Content) -> Result<f32, DeError> {
        f64::from_content(c).map(|f| f as f32)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<String, DeError> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, found {other}"))),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<char, DeError> {
        let s = String::from_content(c)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(DeError::custom(format!("expected char, found '{s}'"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Box<T>, DeError> {
        T::from_content(c).map(Box::new)
    }
}

// The `rc` feature of real serde; always available here.
impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl Deserialize for Arc<str> {
    fn from_content(c: &Content) -> Result<Arc<str>, DeError> {
        String::from_content(c).map(Arc::from)
    }
}

impl<T: Deserialize> Deserialize for Arc<[T]> {
    fn from_content(c: &Content) -> Result<Arc<[T]>, DeError> {
        Vec::<T>::from_content(c).map(Arc::from)
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_content(c: &Content) -> Result<Arc<T>, DeError> {
        T::from_content(c).map(Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Option<T>, DeError> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Vec<T>, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected sequence, found {other}"))),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<BTreeSet<T>, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected sequence, found {other}"))),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn from_content(c: &Content) -> Result<HashSet<T, S>, DeError> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!("expected sequence, found {other}"))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<BTreeMap<K, V>, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected map, found {other}"))),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn from_content(c: &Content) -> Result<HashMap<K, V, S>, DeError> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected map, found {other}"))),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($n:expr => $($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<($($name,)+), DeError> {
                let items = content_seq(c, $n)?;
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    };
}
impl_serde_tuple!(2 => A: 0, B: 1);
impl_serde_tuple!(3 => A: 0, B: 1, C: 2);
impl_serde_tuple!(4 => A: 0, B: 1, C: 2, D: 3);

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Content, DeError> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN] {
            assert_eq!(i64::from_content(&v.to_content()).unwrap(), v);
        }
        assert_eq!(u64::from_content(&u64::MAX.to_content()).unwrap(), u64::MAX);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn collection_roundtrips() {
        let v = vec![1i64, 2, 3];
        assert_eq!(Vec::<i64>::from_content(&v.to_content()).unwrap(), v);
        let m: BTreeMap<String, i64> = [("a".to_string(), 1)].into_iter().collect();
        assert_eq!(
            BTreeMap::<String, i64>::from_content(&m.to_content()).unwrap(),
            m
        );
        let o: Option<i64> = Some(4);
        assert_eq!(Option::<i64>::from_content(&o.to_content()).unwrap(), o);
        assert_eq!(
            Option::<i64>::from_content(&None::<i64>.to_content()).unwrap(),
            None
        );
        let t = (1i64, "x".to_string());
        assert_eq!(<(i64, String)>::from_content(&t.to_content()).unwrap(), t);
    }

    #[test]
    fn arc_impls() {
        let s: Arc<str> = Arc::from("abc");
        assert_eq!(&*Arc::<str>::from_content(&s.to_content()).unwrap(), "abc");
        let xs: Arc<[i64]> = Arc::from(vec![1i64, 2]);
        assert_eq!(
            &*Arc::<[i64]>::from_content(&xs.to_content()).unwrap(),
            &[1, 2]
        );
    }

    #[test]
    fn out_of_range_ints_error() {
        assert!(u8::from_content(&Content::Int(300)).is_err());
        assert!(i64::from_content(&Content::UInt(u64::MAX)).is_err());
        assert!(u64::from_content(&Content::Int(-1)).is_err());
    }
}
