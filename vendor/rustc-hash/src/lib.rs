//! Workspace-local stand-in for the `rustc-hash` crate.
//!
//! The build environment has no network access, so the real crates.io
//! dependency can never be fetched. This crate provides the same API
//! surface the workspace uses (`FxHashMap`, `FxHashSet`, `FxHasher`,
//! `FxBuildHasher`) backed by the same multiply-based hash construction
//! the upstream crate documents (the Firefox hash). See
//! `vendor/README.md` for the vendoring policy.

use std::hash::{BuildHasherDefault, Hasher};

/// A speedy, non-cryptographic hasher (the Firefox/rustc hash).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Golden-ratio multiplier used by the upstream implementation.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<String, i32> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        let s: FxHashSet<u64> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&42));
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_eq!(h(b"hello"), h(b"hello"));
        assert_ne!(h(b"hello"), h(b"world"));
    }
}
