//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real crates.io
//! dependency can never be fetched. This crate reimplements the subset
//! of the proptest API the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`/`prop_filter`, `any`, `Just`,
//! ranges and tuples as strategies, regex-like string strategies, the
//! `collection`/`option`/`sample` modules, and the `proptest!` /
//! `prop_assert*!` / `prop_oneof!` macros.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case reports the exact generated
//!   inputs (all workspace types are `Debug`) instead of a minimized
//!   one.
//! * **Deterministic seeding.** Each test derives its RNG seed from its
//!   module path and name, so runs are reproducible and CI is stable;
//!   `*.proptest-regressions` files are not consulted.
//! * **String strategies** support the regex subset the workspace uses:
//!   literals, `.`, character classes with ranges and escapes, and the
//!   `{m,n}` / `{n}` / `*` / `+` / `?` quantifiers.
//!
//! See `vendor/README.md` for the vendoring policy.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

mod pattern;

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// Runner configuration (`cases` = number of generated inputs per test).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keep only values for which `pred` holds (panics if 1000
    /// consecutive samples are rejected).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            reason: reason.into(),
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        std::rc::Rc::new(self)
    }
}

/// A type-erased strategy (reference-counted so composite strategies
/// built from it can be `Clone`).
pub type BoxedStrategy<T> = std::rc::Rc<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        (**self).gen(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `any::<T>()` strategy: uniform over `T`'s whole domain.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

/// Uniform values of `T` (bools, integers, floats in `[0, 1)`).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        rng.gen()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    reason: String,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter('{}') rejected 1000 consecutive samples",
            self.reason
        );
    }
}

/// Uniform choice among type-erased arms (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Union<T> {
    /// Build from already-boxed arms (at least one).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].gen(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*}
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn gen(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn gen(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// String literals are regex-like string strategies.
impl Strategy for &'static str {
    type Value = String;
    fn gen(&self, rng: &mut TestRng) -> String {
        pattern::sample(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// An inclusive-by-normalization size bound for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::*;

    /// A `Vec` of values from `elem`, with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.gen(rng)).collect()
        }
    }

    /// A `BTreeSet` of values from `elem`; duplicates may make the set
    /// smaller than the drawn size (as in real proptest).
    pub fn btree_set<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            elem,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.gen(rng)).collect()
        }
    }
}

/// The `option::of` strategy.
pub mod option {
    use super::*;

    /// `None` a quarter of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn gen(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_range(0..4usize) == 0 {
                None
            } else {
                Some(self.inner.gen(rng))
            }
        }
    }
}

/// Sampling from fixed collections (`select`, `subsequence`).
pub mod sample {
    use super::*;

    /// Pick one element of `items` uniformly.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs a non-empty Vec");
        Select { items }
    }

    /// See [`select`].
    #[derive(Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn gen(&self, rng: &mut TestRng) -> T {
            self.items[rng.gen_range(0..self.items.len())].clone()
        }
    }

    /// An order-preserving random subsequence of `items` whose length is
    /// drawn from `size` (clamped to `items.len()`).
    pub fn subsequence<T: Clone>(items: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        Subsequence {
            items,
            size: size.into(),
        }
    }

    /// See [`subsequence`].
    #[derive(Clone)]
    pub struct Subsequence<T> {
        items: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;
        fn gen(&self, rng: &mut TestRng) -> Vec<T> {
            let want = self.size.sample(rng).min(self.items.len());
            // Floyd-style distinct index sampling, then restore order.
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < want {
                picked.insert(rng.gen_range(0..self.items.len()));
            }
            picked.into_iter().map(|i| self.items[i].clone()).collect()
        }
    }
}

/// Everything property tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just,
        ProptestConfig, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Runner plumbing used by the proptest! macro.
// ---------------------------------------------------------------------------

/// Deterministic per-test seed (FNV-1a of the test's full path).
#[doc(hidden)]
pub fn __new_rng(test_path: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a test running `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            let mut __rng = $crate::__new_rng(__path);
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::gen(&($strat), &mut __rng);)+
                let mut __inputs = String::new();
                $(__inputs.push_str(
                    &format!(concat!("  ", stringify!($arg), " = {:?}\n"), &$arg),
                );)+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(move || $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed with inputs:\n{}",
                        __path,
                        __case + 1,
                        __cfg.cases,
                        __inputs,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// `assert!` under the name property tests expect.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under the name property tests expect.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under the name property tests expect.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_produce_expected_shapes() {
        let mut rng = crate::__new_rng("unit");
        for _ in 0..200 {
            let v = crate::Strategy::gen(&(0i64..10), &mut rng);
            assert!((0..10).contains(&v));
            let s = crate::Strategy::gen(&"[a-c]{2,4}", &mut rng);
            assert!((2..=4).contains(&s.len()));
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
            let pair = crate::Strategy::gen(&(1u32..3, Just("x")), &mut rng);
            assert!((1..3).contains(&pair.0));
            assert_eq!(pair.1, "x");
            let sub =
                crate::Strategy::gen(&crate::sample::subsequence(vec![1, 2, 3], 1..=3), &mut rng);
            assert!(!sub.is_empty() && sub.windows(2).all(|w| w[0] < w[1]));
            let chosen = crate::Strategy::gen(&prop_oneof![Just(1), 5i32..7, Just(9)], &mut rng);
            assert!([1, 5, 6, 9].contains(&chosen));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_runs_and_binds(
            a in 0usize..5,
            v in crate::collection::vec(any::<bool>(), 0..4),
            o in crate::option::of(Just(7i64)),
        ) {
            prop_assert!(a < 5);
            prop_assert!(v.len() < 4);
            if let Some(x) = o {
                prop_assert_eq!(x, 7);
            }
        }
    }

    proptest! {
        #[test]
        fn filter_and_map_compose(
            s in "[a-z]{1,6}".prop_filter("not 'zz'", |s| s != "zz"),
            n in (0i64..100).prop_map(|n| n * 2),
        ) {
            prop_assert_ne!(s.as_str(), "zz");
            prop_assert_eq!(n % 2, 0);
        }
    }
}
