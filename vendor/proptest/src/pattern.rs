//! Regex-subset string generation for `&str` strategies.
//!
//! Supports the constructs the workspace's patterns use: literal
//! characters, `.` (printable characters), character classes with
//! ranges and `\`-escapes, and the `{m,n}` / `{n}` / `{m,}` / `*` /
//! `+` / `?` quantifiers. Alternation and groups are not supported and
//! panic with a clear message.

use crate::TestRng;
use rand::Rng;

/// One repeatable unit of the pattern.
enum Atom {
    /// A fixed set of candidate characters.
    Chars(Vec<char>),
    /// `.`: mostly printable ASCII, with occasional non-ASCII to keep
    /// robustness tests honest about UTF-8.
    Any,
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generate one string matching `pattern`.
pub fn sample(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for q in &atoms {
        let count = rng.gen_range(q.min..=q.max);
        for _ in 0..count {
            out.push(sample_atom(&q.atom, rng));
        }
    }
    out
}

fn sample_atom(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Chars(cs) => cs[rng.gen_range(0..cs.len())],
        Atom::Any => {
            if rng.gen_range(0..16usize) == 0 {
                const EXOTIC: &[char] = &['é', 'λ', '漢', '🦀', '\t', '\u{0}'];
                EXOTIC[rng.gen_range(0..EXOTIC.len())]
            } else {
                char::from(rng.gen_range(0x20u8..=0x7E))
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut atoms = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::Any
            }
            '[' => {
                let (atom, next) = parse_class(pattern, &chars, i + 1);
                i = next;
                atom
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling '\\' in pattern '{pattern}'"));
                i += 1;
                Atom::Chars(vec![unescape(c)])
            }
            '(' | ')' | '|' => panic!(
                "pattern '{pattern}': groups/alternation are not supported by the \
                 vendored proptest stand-in"
            ),
            c => {
                i += 1;
                Atom::Chars(vec![c])
            }
        };
        let (min, max, next) = parse_quantifier(pattern, &chars, i);
        i = next;
        atoms.push(Quantified { atom, min, max });
    }
    atoms
}

fn parse_class(pattern: &str, chars: &[char], mut i: usize) -> (Atom, usize) {
    let mut set = Vec::new();
    if chars.get(i) == Some(&'^') {
        panic!("pattern '{pattern}': negated classes are not supported");
    }
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(
                *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling '\\' in class of pattern '{pattern}'")),
            )
        } else {
            chars[i]
        };
        i += 1;
        // A '-' with a following endpoint (not ']' and not trailing)
        // forms a range; otherwise '-' is a literal.
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
            let hi = chars[i + 1];
            assert!(
                c <= hi,
                "pattern '{pattern}': reversed range {c}-{hi} in class"
            );
            for v in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(v) {
                    set.push(ch);
                }
            }
            i += 2;
        } else {
            set.push(c);
        }
    }
    assert!(
        i < chars.len(),
        "pattern '{pattern}': unterminated character class"
    );
    assert!(
        !set.is_empty(),
        "pattern '{pattern}': empty character class"
    );
    (Atom::Chars(set), i + 1)
}

fn parse_quantifier(pattern: &str, chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("pattern '{pattern}': unterminated quantifier"));
            let body: String = chars[i + 1..close].iter().collect();
            let parse_n = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("pattern '{pattern}': bad quantifier '{{{body}}}'"))
            };
            let (min, max) = match body.split_once(',') {
                None => {
                    let n = parse_n(&body);
                    (n, n)
                }
                Some((lo, "")) => {
                    let m = parse_n(lo);
                    (m, m + 8)
                }
                Some((lo, hi)) => (parse_n(lo), parse_n(hi)),
            };
            assert!(
                min <= max,
                "pattern '{pattern}': reversed quantifier '{{{body}}}'"
            );
            (min, max, close + 1)
        }
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('?') => (0, 1, i + 1),
        _ => (1, 1, i),
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        '0' => '\0',
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        crate::__new_rng("pattern-tests")
    }

    #[test]
    fn workspace_patterns_generate_matching_strings() {
        let mut rng = rng();
        for _ in 0..500 {
            let s = sample("[a-zA-Z][a-zA-Z0-9_:]{0,16}", &mut rng);
            assert!((1..=17).contains(&s.chars().count()), "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic(), "{s:?}");
            assert!(s
                .chars()
                .skip(1)
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'));

            let s = sample("[a-zA-Z0-9 _-]{0,24}", &mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _-".contains(c)));

            let s = sample(r"[ a-zA-Z0-9_.,<>=!*()\[\]']{0,8}", &mut rng);
            assert!(s.chars().count() <= 8);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " _.,<>=!*()[]'".contains(c)));

            let s = sample(".{0,200}", &mut rng);
            assert!(s.chars().count() <= 200);
        }
    }

    #[test]
    fn quantifier_forms() {
        let mut rng = rng();
        for _ in 0..200 {
            assert_eq!(sample("a{3}", &mut rng), "aaa");
            let s = sample("a+b?c*", &mut rng);
            assert!(s.starts_with('a'));
            let s = sample("x{2,}", &mut rng);
            assert!(s.chars().count() >= 2);
        }
    }

    #[test]
    fn literal_and_escape() {
        let mut rng = rng();
        assert_eq!(sample(r"ab\.c", &mut rng), "ab.c");
        assert_eq!(sample(r"\[Now\]", &mut rng), "[Now]");
    }

    #[test]
    #[should_panic(expected = "not supported")]
    fn groups_rejected() {
        sample("(a|b)", &mut rng());
    }
}
