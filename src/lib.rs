#![forbid(unsafe_code)]
//! # cosmos-stream
//!
//! A from-scratch Rust reproduction of **"Rethinking the Design of
//! Distributed Stream Processing Systems"** (Zhou, Aberer, Salehi, Tan —
//! ICDE 2008): the COSMOS architecture, which backs a wide-area stream
//! processing service with a stream-aware **content-based network** and
//! rewrites overlapping user queries into shared **representative
//! queries** whose result streams are split back per user by ordinary
//! CBN filters.
//!
//! This crate is the facade: it re-exports every subsystem crate under
//! one roof and hosts the runnable examples and cross-crate integration
//! tests. Start with [`system::Cosmos`](cosmos::Cosmos) for the whole
//! deployment, or use the layers directly:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`types`] | `cosmos-types` | values, tuples, schemas, time |
//! | [`cql`] | `cosmos-cql` | the CQL-subset parser |
//! | [`cbn`] | `cosmos-cbn` | profiles, matching, routing, registry/DHT |
//! | [`overlay`] | `cosmos-overlay` | topologies, MST dissemination trees, optimizer |
//! | [`spe`] | `cosmos-spe` | the stream processing engine |
//! | [`query`] | `cosmos-query` | containment, merging, grouping, estimation |
//! | [`workload`] | `cosmos-workload` | sensor/auction/random-query generators |
//! | [`system`] | `cosmos` | brokers, processors, the discrete-event driver |
//!
//! ## Quickstart
//!
//! ```
//! use cosmos::{Cosmos, CosmosConfig};
//! use cosmos_query::{AttrStats, StreamStats};
//! use cosmos_types::{AttrType, NodeId, Schema, Timestamp, Tuple, Value};
//!
//! let mut sys = Cosmos::new(CosmosConfig { nodes: 8, seed: 1, ..Default::default() }).unwrap();
//! sys.register_stream(
//!     "Temps",
//!     Schema::of(&[("celsius", AttrType::Float), ("timestamp", AttrType::Int)]),
//!     StreamStats::with_rate(1.0).attr("celsius", AttrStats::numeric(-20.0, 45.0, 650.0)),
//!     NodeId(2),
//! ).unwrap();
//! let q = sys.submit_query("SELECT celsius FROM Temps [Now] WHERE celsius > 30.0", NodeId(5)).unwrap();
//! sys.publish(&Tuple::new("Temps", Timestamp(0), vec![Value::Float(35.5), Value::Int(0)])).unwrap();
//! assert_eq!(sys.results(q).len(), 1);
//! ```

pub use cosmos as system;
pub use cosmos_cbn as cbn;
pub use cosmos_cql as cql;
pub use cosmos_overlay as overlay;
pub use cosmos_query as query;
pub use cosmos_spe as spe;
pub use cosmos_types as types;
pub use cosmos_workload as workload;
